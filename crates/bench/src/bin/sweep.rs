//! Scenario-sweep driver: expand a seeds × budgets × generator-variants ×
//! models grid, batch every cell over the shared pool
//! (`surrogate::sweep::run_sweep_resumable`), print per-cell metrics rows
//! plus per-model means, and write the `SweepReport` JSON artifact (read
//! back **typed** through the `serde_json` shim as a schema check — CI
//! smoke-runs this).
//!
//! Durability modes on top of the plain run:
//!
//! * `--shard I/N` runs one deterministic round-robin slice of the
//!   axis-major cell order, so N independent containers split one grid;
//! * `--resume PRIOR.json` loads completed cells from a prior artifact
//!   (rejected if its grid fingerprint is stale) and runs only the rest;
//! * `--merge a.json b.json …` recombines disjoint shard artifacts into the
//!   single report an unsharded run would have produced;
//! * `--canonical-out PATH` additionally writes the wall-clock-zeroed form,
//!   which CI diffs to enforce shard-merge ≡ unsharded and resumed ≡
//!   from-scratch byte-for-byte;
//! * `--drop-last K IN.json` truncates an artifact (test/CI surgery for the
//!   resume smoke).
//!
//! Fault-tolerance modes (see `surrogate::fault`):
//!
//! * `--budget-ms N` / `--max-epochs N` cap every cell's fit, turning a
//!   runaway fit into a typed `budget` row instead of a hung shard;
//! * `--retries N` re-runs a failed cell up to N times under deterministic
//!   per-attempt reseeds (budget trips never retry);
//! * `--journal PATH` appends every completed cell row to a crash-safe,
//!   fsync'd journal; `--resume` accepts either a full artifact or such a
//!   journal (sniffed by its `{"journal_version"` prefix), folding a torn
//!   tail away, so a SIGKILL'd sweep resumes from its last completed cell;
//! * `--inject SPEC` deterministically injects faults at named cells
//!   (`cell3:panic,cell7:delay:200ms,cell9:nan,cell2:budget`) so CI can
//!   exercise all of the above without timing races;
//! * `--virtual-clock` makes injected delay faults charge their duration to
//!   the cell's wall-clock accounting without actually sleeping, so a fault
//!   matrix with seconds of injected delay finishes in milliseconds;
//! * `--checkpoint-dir DIR` persists every cell whose fit succeeds as a
//!   crash-safe checkpoint artifact (`<cell-id>.ckpt`, written atomically)
//!   that `serve` loads into its model registry.
//!
//! Usage:
//!   sweep [--seeds 2024..2032 | 2024,2025] [--budgets fast,standard]
//!         [--models tabddpm,smote] [--grid default,tier2_heavy]
//!         [--rows N] [--days D] [--sample-rows N] [--no-mlef]
//!         [--sequential] [--quick] [--strict] [--shard I/N]
//!         [--resume PRIOR.json|JOURNAL.jsonl] [--out PATH]
//!         [--canonical-out PATH] [--csv PATH] [--retries N]
//!         [--budget-ms N] [--max-epochs N] [--journal PATH]
//!         [--inject SPEC]
//!   sweep --merge A.json B.json … [--allow-partial] [--out PATH]
//!         [--canonical-out PATH]
//!   sweep --drop-last K IN.json [--out PATH]
//!
//! `--seeds` accepts a half-open range (`A..B`) or a comma list. `--rows`
//! overrides every variant's gross record count (`--rows 0` keeps each
//! preset's own value; the default is 20000 so a bare run finishes on a
//! laptop). `--quick` is the CI smoke grid: 2 seeds × smoke budget × the
//! `small` preset × all four models = 8 cells at 2500 gross records.

use std::path::PathBuf;
use std::time::Duration;

use metrics::{mean_report, EvaluationConfig, SurrogateReport};
use surrogate::sweep::{
    grid_fingerprint, run_sweep_resumable_durable, JournalHeader, JournalWriter,
    NamedGeneratorConfig, ShardSpec, SweepCellRow, SweepGrid, SweepOptions, SweepReport,
    JOURNAL_VERSION,
};
use surrogate::{CellBudget, ExecutionMode, FaultClock, FaultPlan, ModelKind, TrainingBudget};

const USAGE: &str = "\
sweep: scenario-sweep runtime over the surrogate experiment pipeline

run mode:
  --seeds A..B | a,b,c   seed axis (half-open range or comma list; default 2024..2026)
  --budgets LIST         training budgets: smoke|fast, standard, full|paper (default standard)
  --models LIST          model subset: tvae, ctabgan, smote, tabddpm (default all four)
  --grid LIST            generator presets: default, small, tier2_heavy, user_heavy, burst
  --rows N               gross records per variant (0 = keep preset values; default 20000)
  --days D               collection-window override in days
  --sample-rows N        synthetic rows per cell, N >= 1 (default: training-split size)
  --no-mlef              skip the (slow) MLEF probe
  --sequential           run cells one after another (byte-identical to parallel)
  --quick                CI smoke grid: 2 seeds x smoke x small preset x 4 models (8 cells)
  --strict               exit non-zero if ANY cell fails (default: only when all do)
  --shard I/N            run only cells with index % N == I (round-robin over the
                         axis-major order); merge the N artifacts with --merge
  --resume PRIOR.json    load completed cells from a prior artifact OR a crash
                         journal of the SAME grid (fingerprint-checked) and run
                         only the rest; journals may have a torn last line
  --out PATH             JSON artifact path (default SWEEP.json)
  --canonical-out PATH   also write the artifact with wall-clock fields zeroed
                         (the form CI byte-compares across shards/resumes)
  --csv PATH             also write per-cell metrics rows as CSV (cell id in the model column)

fault tolerance:
  --budget-ms N          per-cell wall-clock budget in milliseconds (N >= 1);
                         a tripped cell becomes a typed 'budget' row
  --max-epochs N         per-cell training-epoch cap (0 trips immediately)
  --retries N            retry failed cells up to N times with deterministic
                         per-attempt reseeds (budget trips never retry)
  --journal PATH         append each completed cell row to a crash-safe journal
                         (fsync'd line-delimited JSON) usable with --resume
  --inject SPEC          deterministic fault injection at named cells, e.g.
                         cell3:panic,cell7:delay:200ms,cell9:nan,cell2:budget
                         (panic/nan accept :K to fail only the first K attempts)
  --virtual-clock        charge injected delays to wall-clock accounting
                         without sleeping (keeps fault matrices fast in CI)
  --checkpoint-dir DIR   persist each fitted cell as a crash-safe checkpoint
                         artifact (<cell-id>.ckpt, atomic temp+fsync+rename)
                         in DIR; created if missing, must be a writable
                         directory (not an existing file)

merge mode:
  --merge A.json B.json ...  validate + recombine disjoint shard artifacts
  --allow-partial            accept a merge that does not cover the full grid
  --out / --canonical-out    as in run mode

artifact surgery:
  --drop-last K IN.json      rewrite IN.json without its last K cell rows
                             (used by the CI resume smoke) to --out
";

/// Flags that consume the following argument, for positional extraction.
const VALUE_FLAGS: &[&str] = &[
    "--seeds",
    "--budgets",
    "--models",
    "--grid",
    "--rows",
    "--days",
    "--sample-rows",
    "--shard",
    "--resume",
    "--out",
    "--canonical-out",
    "--csv",
    "--drop-last",
    "--retries",
    "--budget-ms",
    "--max-epochs",
    "--journal",
    "--inject",
    "--checkpoint-dir",
];

/// Exit for malformed command lines (bad flag syntax, unknown names).
fn usage_error(message: &str) -> ! {
    eprintln!("sweep: {message}");
    eprintln!("sweep: run with --help for usage");
    std::process::exit(2);
}

/// Exit for runtime failures (unreadable/stale artifacts, failed cells).
fn runtime_error(message: &str) -> ! {
    eprintln!("sweep: {message}");
    std::process::exit(1);
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Arguments that are neither flags nor a value consumed by one — the input
/// artifact paths of `--merge` / `--drop-last`.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for arg in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_next = true;
        } else if !arg.starts_with("--") {
            out.push(arg.clone());
        }
    }
    out
}

/// Parse the seed axis: a half-open `A..B` range or a comma list. Every
/// malformed spelling comes back as `Err` with the offending token, so the
/// CLI exits with a message instead of panicking through `parse().unwrap()`.
fn parse_seeds(text: &str) -> Result<Vec<u64>, String> {
    if let Some((start, end)) = text.split_once("..") {
        let start: u64 = start
            .trim()
            .parse()
            .map_err(|_| format!("bad range start '{}' in '{text}'", start.trim()))?;
        let end: u64 = end
            .trim()
            .parse()
            .map_err(|_| format!("bad range end '{}' in '{text}'", end.trim()))?;
        if start >= end {
            return Err(format!("empty seed range '{text}' (want start < end)"));
        }
        return Ok((start..end).collect());
    }
    let seeds: Vec<u64> = text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad seed '{s}' in '{text}'")))
        .collect::<Result<_, String>>()?;
    if seeds.is_empty() {
        return Err(format!("empty seed list '{text}'"));
    }
    Ok(seeds)
}

fn parse_list<T>(text: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    text.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            parse(s.trim())
                .unwrap_or_else(|| usage_error(&format!("unknown {what} '{}'", s.trim())))
        })
        .collect()
}

/// Drop repeated axis values (first occurrence wins): a duplicated seed or
/// preset would expand into duplicate cell ids fitted twice and
/// double-weighted by the per-model means.
fn dedup_axis<T, K: PartialEq>(what: &str, values: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut unique: Vec<T> = Vec::with_capacity(values.len());
    let mut keys: Vec<K> = Vec::with_capacity(values.len());
    let mut dropped = 0usize;
    for value in values {
        let k = key(&value);
        if keys.contains(&k) {
            dropped += 1;
        } else {
            keys.push(k);
            unique.push(value);
        }
    }
    if dropped > 0 {
        eprintln!("sweep: dropped {dropped} duplicate {what} value(s)");
    }
    unique
}

/// Parse `--retries N` (any non-negative count; 0 disables retries).
fn parse_retries(text: &str) -> Result<u32, String> {
    text.trim()
        .parse::<u32>()
        .map_err(|_| format!("bad --retries '{text}' (want a non-negative integer)"))
}

/// Parse `--budget-ms N` (a wall-clock cap must be at least 1 ms — 0 would
/// fail every cell before its first epoch; use --max-epochs 0 to express
/// that deterministically).
fn parse_budget_ms(text: &str) -> Result<u64, String> {
    match text.trim().parse::<u64>() {
        Ok(0) => Err(format!(
            "bad --budget-ms '{text}' (want >= 1; use --max-epochs 0 for an immediate trip)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("bad --budget-ms '{text}' (want an integer >= 1)")),
    }
}

/// Parse `--max-epochs N` (0 is allowed: the budget trips before the first
/// epoch, which is how CI exercises the budget path without timing races).
fn parse_max_epochs(text: &str) -> Result<usize, String> {
    text.trim()
        .parse::<usize>()
        .map_err(|_| format!("bad --max-epochs '{text}' (want a non-negative integer)"))
}

/// Validate `--checkpoint-dir DIR` up front, before any cell burns compute:
/// the path must not collide with an existing non-directory, is created if
/// missing, and must actually accept writes (probed with a throwaway file).
/// Failing any of these is a usage error — finding out after an hour-long
/// sweep that every checkpoint save failed would defeat the flag's purpose.
fn parse_checkpoint_dir(text: &str) -> Result<PathBuf, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("bad --checkpoint-dir '' (want a directory path)".to_string());
    }
    let dir = PathBuf::from(trimmed);
    if dir.exists() && !dir.is_dir() {
        return Err(format!(
            "bad --checkpoint-dir '{trimmed}': collides with an existing non-directory"
        ));
    }
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("bad --checkpoint-dir '{trimmed}': cannot create: {e}"))?;
    let probe = dir.join(".sweep-write-probe.tmp");
    std::fs::write(&probe, b"probe\n")
        .map_err(|e| format!("bad --checkpoint-dir '{trimmed}': not writable: {e}"))?;
    let _ = std::fs::remove_file(&probe);
    Ok(dir)
}

/// Read an artifact back through the typed `Deserialize` path and check its
/// structural invariants.
fn read_report(path: &str) -> SweepReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")));
    let report: SweepReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| runtime_error(&format!("cannot parse {path}: {e}")));
    report
        .validate()
        .unwrap_or_else(|e| runtime_error(&format!("invalid artifact {path}: {e}")));
    report
}

/// Read a `--resume` prior: either a full JSON artifact or a crash journal.
/// Journals are sniffed by their `{"journal_version"` header prefix; a torn
/// trailing line (the mark of a mid-append crash) is folded away by
/// `SweepReport::recover_journal`.
fn read_prior(path: &str) -> SweepReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| runtime_error(&format!("cannot read {path}: {e}")));
    if text.trim_start().starts_with("{\"journal_version\"") {
        let report = SweepReport::recover_journal(&text)
            .unwrap_or_else(|e| runtime_error(&format!("cannot recover journal {path}: {e}")));
        eprintln!(
            "sweep: recovered {} completed cell(s) from journal {path}",
            report.total_cells
        );
        report
    } else {
        read_report(path)
    }
}

/// Render an artifact, write it, and prove the written bytes read back
/// through the typed parser (the writer/parser round-trip CI relies on).
fn write_report(report: &SweepReport, path: &str) {
    let json = serde_json::to_string_pretty(report).expect("render sweep report");
    std::fs::write(path, json + "\n")
        .unwrap_or_else(|e| runtime_error(&format!("cannot write {path}: {e}")));
    match std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| SweepReport::validate_artifact(&text))
    {
        Ok(cells) => eprintln!("sweep: wrote and validated {path} ({cells} cells)"),
        Err(e) => runtime_error(&format!("emitted {path} failed validation: {e}")),
    }
}

/// Write the wall-clock-zeroed canonical form when requested.
fn write_canonical(report: &SweepReport, args: &[String]) {
    if let Some(path) = value(args, "--canonical-out") {
        write_report(&report.canonical(), &path);
    }
}

/// Per-cell Table-I row rebuilt from an artifact row (resumed cells carry
/// no in-memory `CellRun`, so means and CSV exports work off the report).
fn row_metrics(row: &SweepCellRow) -> Option<SurrogateReport> {
    if !row.ok {
        return None;
    }
    Some(SurrogateReport {
        model: row.model.clone(),
        wd: row.wd?,
        jsd: row.jsd?,
        diff_corr: row.diff_corr?,
        dcr: row.dcr?,
        diff_mlef: row.diff_mlef,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if flag(&args, "--merge") {
        merge_main(&args);
    } else if flag(&args, "--drop-last") {
        drop_last_main(&args);
    } else {
        run_main(&args);
    }
}

/// `--merge`: validate and recombine shard artifacts.
fn merge_main(args: &[String]) {
    let inputs = positionals(args);
    if inputs.is_empty() {
        usage_error("--merge needs at least one artifact path");
    }
    let parts: Vec<SweepReport> = inputs.iter().map(|path| read_report(path)).collect();
    let merged =
        SweepReport::merge(&parts).unwrap_or_else(|e| runtime_error(&format!("cannot merge: {e}")));
    if !merged.is_complete() && !flag(args, "--allow-partial") {
        runtime_error(&format!(
            "merged artifact covers {} of {} grid cells; pass --allow-partial to accept an \
             incomplete merge",
            merged.total_cells, merged.grid_cells
        ));
    }
    eprintln!(
        "sweep: merged {} artifact(s) into {} cells ({} failed, grid {} cells)",
        parts.len(),
        merged.total_cells,
        merged.failed_cells,
        merged.grid_cells
    );
    let out_path = value(args, "--out").unwrap_or_else(|| "SWEEP.json".to_string());
    write_report(&merged, &out_path);
    write_canonical(&merged, args);
}

/// `--drop-last K IN.json`: artifact surgery for the CI resume smoke.
fn drop_last_main(args: &[String]) {
    let count: usize = value(args, "--drop-last")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage_error("--drop-last needs an integer row count"));
    let inputs = positionals(args);
    let [input] = inputs.as_slice() else {
        usage_error("--drop-last needs exactly one input artifact path");
    };
    let mut report = read_report(input);
    if count > report.cells.len() {
        runtime_error(&format!(
            "cannot drop {count} rows from a {}-row artifact",
            report.cells.len()
        ));
    }
    report.cells.truncate(report.cells.len() - count);
    report.total_cells = report.cells.len();
    report.failed_cells = report.cells.iter().filter(|row| !row.ok).count();
    let out_path = value(args, "--out").unwrap_or_else(|| "SWEEP.json".to_string());
    eprintln!(
        "sweep: dropped the last {count} row(s) of {input} ({} remain)",
        report.total_cells
    );
    write_report(&report, &out_path);
}

/// Default mode: expand the grid and run it (optionally one shard of it,
/// optionally resuming from a prior artifact).
fn run_main(args: &[String]) {
    let quick = flag(args, "--quick");
    let mut grid = SweepGrid {
        seeds: if quick {
            vec![2024, 2025]
        } else {
            (2024..2026).collect()
        },
        budgets: if quick {
            vec![TrainingBudget::Smoke]
        } else {
            vec![TrainingBudget::Standard]
        },
        generators: vec![
            NamedGeneratorConfig::preset(if quick { "small" } else { "default" })
                .expect("known preset"),
        ],
        models: ModelKind::ALL.to_vec(),
    };
    let mut rows_override = Some(if quick { 2_500 } else { 20_000 });

    if let Some(v) = value(args, "--seeds") {
        grid.seeds = parse_seeds(&v).unwrap_or_else(|e| usage_error(&e));
    }
    if let Some(v) = value(args, "--budgets") {
        grid.budgets = parse_list(&v, "budget", TrainingBudget::parse);
    }
    if let Some(v) = value(args, "--models") {
        grid.models = parse_list(&v, "model", ModelKind::parse);
    }
    if let Some(v) = value(args, "--grid") {
        grid.generators = parse_list(&v, "generator preset", NamedGeneratorConfig::preset);
    }
    if let Some(v) = value(args, "--rows") {
        match v.parse::<usize>() {
            Ok(0) => rows_override = None,
            Ok(n) => rows_override = Some(n),
            Err(_) => usage_error(&format!("bad --rows '{v}' (want a non-negative integer)")),
        }
    }
    if let Some(n) = rows_override {
        for generator in &mut grid.generators {
            generator.config.gross_records = n;
        }
    }
    if let Some(v) = value(args, "--days") {
        let days: f64 = v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("bad --days '{v}' (want a number)")));
        for generator in &mut grid.generators {
            generator.config.days = days;
        }
    }
    grid.seeds = dedup_axis("--seeds", grid.seeds, |s| *s);
    grid.budgets = dedup_axis("--budgets", grid.budgets, |b| *b);
    grid.models = dedup_axis("--models", grid.models, |m| *m);
    grid.generators = dedup_axis("--grid", grid.generators, |g| g.name.clone());

    let shard = value(args, "--shard").map(|v| {
        ShardSpec::parse(&v).unwrap_or_else(|e| usage_error(&format!("bad --shard: {e}")))
    });
    let evaluation = if quick || flag(args, "--no-mlef") {
        EvaluationConfig {
            mlef: None,
            ..EvaluationConfig::fast()
        }
    } else {
        EvaluationConfig::fast()
    };
    let budget = CellBudget {
        wall_clock: value(args, "--budget-ms")
            .map(|v| parse_budget_ms(&v).unwrap_or_else(|e| usage_error(&e)))
            .map(Duration::from_millis),
        max_epochs: value(args, "--max-epochs")
            .map(|v| parse_max_epochs(&v).unwrap_or_else(|e| usage_error(&e))),
    };
    let options = SweepOptions {
        mode: if flag(args, "--sequential") {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::Parallel
        },
        evaluation,
        keep_tables: false,
        sample_rows: value(args, "--sample-rows").map(|v| match v.parse() {
            Ok(n) if n > 0 => n,
            _ => usage_error(&format!("bad --sample-rows '{v}' (want an integer >= 1)")),
        }),
        budget,
        retries: value(args, "--retries")
            .map(|v| parse_retries(&v).unwrap_or_else(|e| usage_error(&e)))
            .unwrap_or(0),
        faults: value(args, "--inject")
            .map(|v| {
                FaultPlan::parse(&v).unwrap_or_else(|e| usage_error(&format!("bad --inject: {e}")))
            })
            .unwrap_or_else(FaultPlan::none),
        clock: if flag(args, "--virtual-clock") {
            FaultClock::Virtual
        } else {
            FaultClock::Real
        },
    };
    let checkpoint_dir = value(args, "--checkpoint-dir")
        .map(|v| parse_checkpoint_dir(&v).unwrap_or_else(|e| usage_error(&e)));
    let out_path = value(args, "--out").unwrap_or_else(|| "SWEEP.json".to_string());
    let prior = value(args, "--resume").map(|path| read_prior(&path));

    if grid.is_empty() {
        usage_error("the grid is empty (every axis needs at least one value)");
    }
    eprintln!(
        "sweep: {} cells = {} seed(s) x {} budget(s) x {} generator variant(s) x {} model(s){}",
        grid.len(),
        grid.seeds.len(),
        grid.budgets.len(),
        grid.generators.len(),
        grid.models.len(),
        shard.map(|s| format!(", shard {s}")).unwrap_or_default()
    );

    // The journal is created after the fingerprint is final (grid + options
    // both settled) so a recovered journal can be matched to its grid.
    let journal = value(args, "--journal").map(|path| {
        let header = JournalHeader {
            journal_version: JOURNAL_VERSION,
            grid_fingerprint: grid_fingerprint(&grid, &options),
            grid_cells: grid.len(),
            shard,
        };
        JournalWriter::create(std::path::Path::new(&path), &header)
            .unwrap_or_else(|e| runtime_error(&format!("cannot create journal {path}: {e}")))
    });

    let summary = run_sweep_resumable_durable(
        &grid,
        &options,
        shard,
        prior.as_ref(),
        journal.as_ref(),
        checkpoint_dir.as_deref(),
    )
    .unwrap_or_else(|e| runtime_error(&format!("cannot resume: {e}")));
    let report = &summary.report;
    if let Some(dir) = &checkpoint_dir {
        let saved = std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".ckpt"))
                    .count()
            })
            .unwrap_or(0);
        eprintln!(
            "sweep: checkpoint dir {} holds {saved} artifact(s)",
            dir.display()
        );
    }
    eprintln!(
        "sweep: executed {} cell(s), resumed {} from the prior artifact",
        summary.runs.len(),
        summary.resumed
    );
    let failed = report.failed_cells;
    for row in report.cells.iter().filter(|row| !row.ok) {
        eprintln!(
            "warning: cell {} failed [{}, {} attempt(s)]: {}",
            row.id,
            row.error_kind.as_deref().unwrap_or("unknown"),
            row.attempts,
            row.error.as_deref().unwrap_or("unknown error")
        );
    }

    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>9}",
        "cell", "rows", "WD↓", "JSD↓", "diff-CORR↓", "DCR↑", "diff-MLEF↓", "wall ms"
    );
    for row in &report.cells {
        if row.ok {
            let mlef = row
                .diff_mlef
                .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"));
            println!(
                "{:<34} {:>8} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>10} {:>9.0}",
                row.id,
                row.train_rows.unwrap_or(0),
                row.wd.unwrap_or(f64::NAN),
                row.jsd.unwrap_or(f64::NAN),
                row.diff_corr.unwrap_or(f64::NAN),
                row.dcr.unwrap_or(f64::NAN),
                mlef,
                row.wall_ms
            );
        } else {
            println!(
                "{:<34} FAILED: {}",
                row.id,
                row.error.as_deref().unwrap_or("unknown error")
            );
        }
    }

    // Per-model means across every passing cell (the sweep-level Table I),
    // resumed rows included — the metrics come from the artifact rows, not
    // the in-memory runs.
    println!(
        "\nper-model means over {} passing cell(s) ({} total):",
        report.total_cells - failed,
        report.total_cells
    );
    println!("{}", SurrogateReport::table_header());
    for model in &grid.models {
        let rows: Vec<SurrogateReport> = report
            .cells
            .iter()
            .filter(|row| row.model == model.name())
            .filter_map(row_metrics)
            .collect();
        match mean_report(model.name(), &rows) {
            Some(mean) => println!("{}", mean.table_row()),
            None => println!("{:<12} (no passing cells)", model.name()),
        }
    }

    if let Some(csv_path) = value(args, "--csv") {
        // Per-cell metrics rows; the model column carries the full cell id
        // so one file covers every axis combination.
        let mut csv = String::from(SurrogateReport::csv_header());
        csv.push('\n');
        for row in &report.cells {
            if let Some(metrics_row) = row_metrics(row) {
                let line = SurrogateReport {
                    model: row.id.clone(),
                    ..metrics_row
                };
                csv.push_str(&line.csv_row());
                csv.push('\n');
            }
        }
        std::fs::write(&csv_path, csv)
            .unwrap_or_else(|e| runtime_error(&format!("cannot write {csv_path}: {e}")));
        eprintln!("sweep: wrote {csv_path}");
    }

    write_report(report, &out_path);
    write_canonical(report, args);
    eprintln!(
        "sweep: {} cells, {} failed, {:.1}s",
        report.total_cells,
        failed,
        report.wall_ms / 1e3
    );
    if failed == report.total_cells && report.total_cells > 0 {
        runtime_error("every cell failed");
    }
    if failed > 0 && flag(args, "--strict") {
        runtime_error(&format!("{failed} cell(s) failed (--strict)"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_seeds_accepts_ranges_and_lists() {
        assert_eq!(parse_seeds("2024..2027").unwrap(), vec![2024, 2025, 2026]);
        assert_eq!(parse_seeds(" 7 , 9 ").unwrap(), vec![7, 9]);
        assert_eq!(parse_seeds("5").unwrap(), vec![5]);
        assert_eq!(parse_seeds("1,,2").unwrap(), vec![1, 2]);
    }

    #[test]
    fn parse_seeds_rejects_malformed_specs_with_the_offending_token() {
        for (spec, needle) in [
            ("", "empty seed list"),
            ("   ", "empty seed list"),
            ("a,2", "bad seed 'a'"),
            ("3..x", "bad range end 'x'"),
            ("x..3", "bad range start 'x'"),
            ("5..5", "empty seed range"),
            ("9..2", "empty seed range"),
            ("-1,2", "bad seed '-1'"),
            ("1.5", "bad seed '1.5'"),
        ] {
            let err = parse_seeds(spec).unwrap_err();
            assert!(
                err.contains(needle),
                "'{spec}' should fail mentioning {needle:?}, got: {err}"
            );
        }
    }

    #[test]
    fn positionals_skip_flags_and_their_values() {
        let argv = args(&[
            "--merge",
            "a.json",
            "b.json",
            "--out",
            "merged.json",
            "--allow-partial",
            "c.json",
            "--canonical-out",
            "canon.json",
        ]);
        assert_eq!(positionals(&argv), args(&["a.json", "b.json", "c.json"]));
    }

    #[test]
    fn dedup_axis_keeps_first_occurrences_in_order() {
        let deduped = dedup_axis("--seeds", vec![3u64, 1, 3, 2, 1], |s| *s);
        assert_eq!(deduped, vec![3, 1, 2]);
    }

    #[test]
    fn retries_parser_accepts_counts_and_rejects_garbage() {
        assert_eq!(parse_retries("0").unwrap(), 0);
        assert_eq!(parse_retries(" 3 ").unwrap(), 3);
        for bad in ["", "-1", "two", "1.5"] {
            assert!(
                parse_retries(bad).unwrap_err().contains("--retries"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn budget_ms_parser_requires_a_positive_cap() {
        assert_eq!(parse_budget_ms("250").unwrap(), 250);
        assert_eq!(parse_budget_ms(" 1 ").unwrap(), 1);
        for bad in ["0", "", "-5", "fast", "1.5"] {
            assert!(
                parse_budget_ms(bad).unwrap_err().contains("--budget-ms"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn max_epochs_parser_allows_zero_for_immediate_trips() {
        assert_eq!(parse_max_epochs("0").unwrap(), 0);
        assert_eq!(parse_max_epochs("40").unwrap(), 40);
        for bad in ["", "-1", "many"] {
            assert!(
                parse_max_epochs(bad).unwrap_err().contains("--max-epochs"),
                "{bad:?} must be rejected with the flag name"
            );
        }
    }

    #[test]
    fn checkpoint_dir_parser_creates_and_probes_the_directory() {
        let base =
            std::env::temp_dir().join(format!("panda_sweep_ckpt_dir_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // A nested, not-yet-existing path is created.
        let nested = base.join("deep/ckpts");
        let dir = parse_checkpoint_dir(nested.to_str().unwrap()).unwrap();
        assert!(dir.is_dir());
        assert!(
            !dir.join(".sweep-write-probe.tmp").exists(),
            "probe file must be cleaned up"
        );
        // Re-validating an existing directory is fine.
        assert!(parse_checkpoint_dir(nested.to_str().unwrap()).is_ok());

        // Colliding with an existing file is rejected, mentioning the flag.
        let file = base.join("artifact.json");
        std::fs::write(&file, b"{}\n").unwrap();
        let err = parse_checkpoint_dir(file.to_str().unwrap()).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        assert!(err.contains("non-directory"), "{err}");

        assert!(parse_checkpoint_dir("")
            .unwrap_err()
            .contains("--checkpoint-dir"));
        assert!(parse_checkpoint_dir("   ")
            .unwrap_err()
            .contains("--checkpoint-dir"));

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn fault_flag_values_are_consumed_not_treated_as_positionals() {
        let argv = args(&[
            "--inject",
            "cell0:panic",
            "--retries",
            "2",
            "--journal",
            "j.jsonl",
            "--budget-ms",
            "100",
            "--max-epochs",
            "5",
            "in.json",
        ]);
        assert_eq!(positionals(&argv), args(&["in.json"]));
        assert_eq!(value(&argv, "--inject").as_deref(), Some("cell0:panic"));
        assert_eq!(value(&argv, "--retries").as_deref(), Some("2"));
        assert_eq!(value(&argv, "--journal").as_deref(), Some("j.jsonl"));
    }
}
