//! Scenario-sweep driver: expand a seeds × budgets × generator-variants ×
//! models grid, batch every cell over the shared pool
//! (`surrogate::sweep::run_sweep`), print per-cell metrics rows plus
//! per-model means, and write the `SweepReport` JSON artifact (re-parsed
//! through the `serde_json` shim as a schema check — CI smoke-runs this).
//!
//! Usage:
//!   sweep [--seeds 2024..2032 | 2024,2025] [--budgets fast,standard]
//!         [--models tabddpm,smote] [--grid default,tier2_heavy]
//!         [--rows N] [--days D] [--sample-rows N] [--no-mlef]
//!         [--sequential] [--quick] [--strict] [--out PATH] [--csv PATH]
//!
//! `--seeds` accepts a half-open range (`A..B`) or a comma list. `--rows`
//! overrides every variant's gross record count (`--rows 0` keeps each
//! preset's own value; the default is 20000 so a bare run finishes on a
//! laptop). `--quick` is the CI smoke grid: 2 seeds × smoke budget × the
//! `small` preset × all four models = 8 cells at 2500 gross records.

use metrics::{mean_report, EvaluationConfig, SurrogateReport};
use surrogate::sweep::{run_sweep, NamedGeneratorConfig, SweepGrid, SweepOptions, SweepReport};
use surrogate::{ExecutionMode, ModelKind, TrainingBudget};

const USAGE: &str = "\
sweep: scenario-sweep runtime over the surrogate experiment pipeline

  --seeds A..B | a,b,c   seed axis (half-open range or comma list; default 2024..2026)
  --budgets LIST         training budgets: smoke|fast, standard, full|paper (default standard)
  --models LIST          model subset: tvae, ctabgan, smote, tabddpm (default all four)
  --grid LIST            generator presets: default, small, tier2_heavy, user_heavy, burst
  --rows N               gross records per variant (0 = keep preset values; default 20000)
  --days D               collection-window override in days
  --sample-rows N        synthetic rows per cell, N >= 1 (default: training-split size)
  --no-mlef              skip the (slow) MLEF probe
  --sequential           run cells one after another (byte-identical to parallel)
  --quick                CI smoke grid: 2 seeds x smoke x small preset x 4 models (8 cells)
  --strict               exit non-zero if ANY cell fails (default: only when all do)
  --out PATH             JSON artifact path (default SWEEP.json)
  --csv PATH             also write per-cell metrics rows as CSV (cell id in the model column)
";

fn parse_seeds(text: &str) -> Option<Vec<u64>> {
    if let Some((start, end)) = text.split_once("..") {
        let (start, end) = (start.trim().parse().ok()?, end.trim().parse().ok()?);
        if start >= end {
            return None;
        }
        return Some((start..end).collect());
    }
    let seeds: Option<Vec<u64>> = text.split(',').map(|s| s.trim().parse().ok()).collect();
    seeds.filter(|s: &Vec<u64>| !s.is_empty())
}

fn parse_list<T>(text: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    text.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| {
            parse(s.trim()).unwrap_or_else(|| {
                eprintln!("sweep: unknown {what} '{}'", s.trim());
                std::process::exit(2);
            })
        })
        .collect()
}

/// Drop repeated axis values (first occurrence wins): a duplicated seed or
/// preset would expand into duplicate cell ids fitted twice and
/// double-weighted by the per-model means.
fn dedup_axis<T, K: PartialEq>(what: &str, values: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut unique: Vec<T> = Vec::with_capacity(values.len());
    let mut keys: Vec<K> = Vec::with_capacity(values.len());
    let mut dropped = 0usize;
    for value in values {
        let k = key(&value);
        if keys.contains(&k) {
            dropped += 1;
        } else {
            keys.push(k);
            unique.push(value);
        }
    }
    if dropped > 0 {
        eprintln!("sweep: dropped {dropped} duplicate {what} value(s)");
    }
    unique
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let quick = flag("--quick");
    let mut grid = SweepGrid {
        seeds: if quick {
            vec![2024, 2025]
        } else {
            (2024..2026).collect()
        },
        budgets: if quick {
            vec![TrainingBudget::Smoke]
        } else {
            vec![TrainingBudget::Standard]
        },
        generators: vec![
            NamedGeneratorConfig::preset(if quick { "small" } else { "default" })
                .expect("known preset"),
        ],
        models: ModelKind::ALL.to_vec(),
    };
    let mut rows_override = Some(if quick { 2_500 } else { 20_000 });

    if let Some(v) = value("--seeds") {
        grid.seeds = parse_seeds(&v).unwrap_or_else(|| {
            eprintln!("sweep: bad --seeds '{v}' (want A..B or a comma list)");
            std::process::exit(2);
        });
    }
    if let Some(v) = value("--budgets") {
        grid.budgets = parse_list(&v, "budget", TrainingBudget::parse);
    }
    if let Some(v) = value("--models") {
        grid.models = parse_list(&v, "model", ModelKind::parse);
    }
    if let Some(v) = value("--grid") {
        grid.generators = parse_list(&v, "generator preset", NamedGeneratorConfig::preset);
    }
    if let Some(v) = value("--rows") {
        match v.parse::<usize>() {
            Ok(0) => rows_override = None,
            Ok(n) => rows_override = Some(n),
            Err(_) => {
                eprintln!("sweep: bad --rows '{v}'");
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = rows_override {
        for generator in &mut grid.generators {
            generator.config.gross_records = n;
        }
    }
    if let Some(v) = value("--days") {
        let days: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("sweep: bad --days '{v}'");
            std::process::exit(2);
        });
        for generator in &mut grid.generators {
            generator.config.days = days;
        }
    }
    grid.seeds = dedup_axis("--seeds", grid.seeds, |s| *s);
    grid.budgets = dedup_axis("--budgets", grid.budgets, |b| *b);
    grid.models = dedup_axis("--models", grid.models, |m| *m);
    grid.generators = dedup_axis("--grid", grid.generators, |g| g.name.clone());

    let evaluation = if quick || flag("--no-mlef") {
        EvaluationConfig {
            mlef: None,
            ..EvaluationConfig::fast()
        }
    } else {
        EvaluationConfig::fast()
    };
    let options = SweepOptions {
        mode: if flag("--sequential") {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::Parallel
        },
        evaluation,
        keep_tables: false,
        sample_rows: value("--sample-rows").map(|v| match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("sweep: bad --sample-rows '{v}' (want an integer >= 1)");
                std::process::exit(2);
            }
        }),
    };
    let out_path = value("--out").unwrap_or_else(|| "SWEEP.json".to_string());

    if grid.is_empty() {
        eprintln!("sweep: the grid is empty (every axis needs at least one value)");
        std::process::exit(2);
    }
    eprintln!(
        "sweep: {} cells = {} seed(s) x {} budget(s) x {} generator variant(s) x {} model(s)",
        grid.len(),
        grid.seeds.len(),
        grid.budgets.len(),
        grid.generators.len(),
        grid.models.len()
    );

    let outcome = run_sweep(&grid, &options);
    let failed = outcome.report_failures();
    let report = outcome.report();

    println!(
        "{:<34} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>9}",
        "cell", "rows", "WD↓", "JSD↓", "diff-CORR↓", "DCR↑", "diff-MLEF↓", "wall ms"
    );
    for row in &report.cells {
        if row.ok {
            let mlef = row
                .diff_mlef
                .map_or_else(|| "n/a".to_string(), |v| format!("{v:.3}"));
            println!(
                "{:<34} {:>8} {:>8.3} {:>8.3} {:>10.3} {:>8.3} {:>10} {:>9.0}",
                row.id,
                row.train_rows.unwrap_or(0),
                row.wd.unwrap_or(f64::NAN),
                row.jsd.unwrap_or(f64::NAN),
                row.diff_corr.unwrap_or(f64::NAN),
                row.dcr.unwrap_or(f64::NAN),
                mlef,
                row.wall_ms
            );
        } else {
            println!(
                "{:<34} FAILED: {}",
                row.id,
                row.error.as_deref().unwrap_or("unknown error")
            );
        }
    }

    // Per-model means across every passing cell (the sweep-level Table I).
    println!(
        "\nper-model means over {} passing cell(s) ({} total):",
        report.total_cells - report.failed_cells,
        report.total_cells
    );
    println!("{}", SurrogateReport::table_header());
    for model in &grid.models {
        let rows: Vec<SurrogateReport> = outcome
            .runs
            .iter()
            .filter(|run| run.cell.model == *model)
            .filter_map(|run| run.outcome.as_ref().ok().map(|s| s.report.clone()))
            .collect();
        match mean_report(model.name(), &rows) {
            Some(mean) => println!("{}", mean.table_row()),
            None => println!("{:<12} (no passing cells)", model.name()),
        }
    }

    if let Some(csv_path) = value("--csv") {
        // Per-cell metrics rows; the model column carries the full cell id
        // so one file covers every axis combination.
        let mut csv = String::from(SurrogateReport::csv_header());
        csv.push('\n');
        for run in &outcome.runs {
            if let Ok(success) = &run.outcome {
                let row = SurrogateReport {
                    model: run.cell.id(),
                    ..success.report.clone()
                };
                csv.push_str(&row.csv_row());
                csv.push('\n');
            }
        }
        std::fs::write(&csv_path, csv).expect("write sweep CSV");
        eprintln!("sweep: wrote {csv_path}");
    }

    let json = serde_json::to_string_pretty(&report).expect("render sweep report");
    std::fs::write(&out_path, json + "\n").expect("write sweep report");
    match std::fs::read_to_string(&out_path)
        .map_err(|e| e.to_string())
        .and_then(|text| SweepReport::validate_artifact(&text))
    {
        Ok(cells) => eprintln!(
            "sweep: wrote and validated {out_path} ({cells} cells, {failed} failed, {:.1}s)",
            report.wall_ms / 1e3
        ),
        Err(e) => {
            eprintln!("sweep: emitted {out_path} failed validation: {e}");
            std::process::exit(1);
        }
    }
    if failed == report.total_cells {
        eprintln!("sweep: every cell failed");
        std::process::exit(1);
    }
    if failed > 0 && flag("--strict") {
        eprintln!("sweep: {failed} cell(s) failed (--strict)");
        std::process::exit(1);
    }
}
