//! Experiment E4 — reproduce **Fig. 5**: pair-wise feature association
//! matrices for the ground truth and every surrogate model, plus the
//! element-wise difference against the ground truth.
//!
//! ```text
//! cargo run -p bench --release --bin fig5_correlations -- --rows 30000
//! ```

use std::collections::BTreeMap;

use bench::{fit_all, maybe_write_json, prepare_data, ExperimentOptions};
use metrics::{association_matrix, AssociationMatrix};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Artifact {
    ground_truth: AssociationMatrix,
    /// model -> (association matrix, diff-CORR scalar).
    models: BTreeMap<String, (AssociationMatrix, f64)>,
}

fn print_matrix(matrix: &AssociationMatrix) {
    print!("{:<16}", "");
    for name in &matrix.names {
        print!("{:>8}", truncate(name, 7));
    }
    println!();
    for (i, row) in matrix.values.iter().enumerate() {
        print!("{:<16}", truncate(&matrix.names[i], 15));
        for &v in row {
            print!("{v:>8.2}");
        }
        println!();
    }
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let data = prepare_data(&options);

    println!("== Fig. 5(a): ground-truth association matrix ==");
    let gt = association_matrix(&data.train);
    print_matrix(&gt);

    let mut artifact = Fig5Artifact {
        ground_truth: gt.clone(),
        models: BTreeMap::new(),
    };

    println!("\n== Fig. 5(b): synthetic data correlations and diff vs GT ==");
    let fits = fit_all(&data.train, options.budget, options.seed);
    if fits.report_failures() == fits.runs.len() {
        eprintln!("error: every surrogate model failed — nothing to correlate");
        std::process::exit(1);
    }
    for (name, synthetic) in fits.successes() {
        let aligned = synthetic
            .select(
                &data
                    .train
                    .names()
                    .iter()
                    .map(String::as_str)
                    .collect::<Vec<_>>(),
            )
            .expect("synthetic table has the training columns");
        let matrix = association_matrix(&aligned);
        let diff = gt.l2_diff(&matrix);
        println!("\n--- {name} (diff-CORR = {diff:.3}) ---");
        print_matrix(&matrix);
        artifact.models.insert(name.to_string(), (matrix, diff));
    }

    println!("\npaper reference diff-CORR: TVAE 0.653, CTABGAN+ 0.658, SMOTE 0.011, TabDDPM 0.036");
    maybe_write_json(&options, &artifact);
}
