//! Experiment E1 — reproduce **Fig. 3**: the dataset profile (feature kinds
//! and unique-entry counts) and the record-filtering funnel.
//!
//! ```text
//! cargo run -p bench --release --bin fig3_profile -- --rows 60000
//! ```

use bench::{maybe_write_json, prepare_data, ExperimentOptions};
use serde::Serialize;
use tabular::stats::summarize;

#[derive(Serialize)]
struct Fig3Artifact {
    funnel: Vec<pandasim::FunnelStage>,
    profile: Vec<tabular::ColumnSummary>,
}

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let data = prepare_data(&options);

    println!("== Fig. 3(a): dataset profile ==");
    println!("{:<18} {:>4} {:>10}", "feature", "kind", "# unique");
    let merged = data
        .train
        .vstack(&data.test)
        .expect("train and test share a schema");
    let profile = summarize(&merged);
    for column in &profile {
        println!(
            "{:<18} {:>4} {:>10}",
            column.name, column.kind, column.unique
        );
    }

    println!("\n== Fig. 3(b): filtering diagram ==");
    for line in data.funnel.render() {
        println!("  {line}");
    }
    let surviving = data.funnel.surviving();
    println!(
        "  train/test split (80/20)                 {:>10} / {}",
        data.train.n_rows(),
        data.test.n_rows()
    );
    println!("\npaper reference: 2.08M gross records -> 1,648,759 modelling rows (1,319,007 train / 329,752 test)");
    println!(
        "this run:        {} gross records -> {} modelling rows ({} train / {} test)",
        options.gross_records,
        surviving,
        data.train.n_rows(),
        data.test.n_rows()
    );

    maybe_write_json(
        &options,
        &Fig3Artifact {
            funnel: data.funnel.stages.clone(),
            profile,
        },
    );
}
