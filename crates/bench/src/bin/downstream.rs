//! Experiment E6 (extension, §VI) — downstream response of an event-driven
//! HTC-grid simulation to real vs. surrogate-generated workloads.
//!
//! The paper motivates the surrogate models as a source of "more realistic
//! workload inputs to calibrate large-scale event-based simulations". Here we
//! drive the `htcsim` grid simulator once with the ground-truth job stream
//! and once with each model's synthetic stream, under every brokerage
//! policy, and compare the simulator's aggregate responses (makespan, mean
//! wait, WAN traffic). A good surrogate produces responses close to the
//! ground truth's.
//!
//! ```text
//! cargo run -p bench --release --bin downstream -- --rows 20000 --budget smoke
//! ```

use std::collections::BTreeMap;

use bench::{fit_all, maybe_write_json, prepare_data, ExperimentOptions};
use htcsim::{BrokerPolicy, GridSimulator, SimConfig, SimJob, SimReport};
use serde::Serialize;

#[derive(Serialize)]
struct DownstreamArtifact {
    /// policy -> source ("GT" or model name) -> simulator report.
    responses: BTreeMap<String, BTreeMap<String, SimReport>>,
}

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let data = prepare_data(&options);
    let fits = fit_all(&data.train, options.budget, options.seed);
    if fits.report_failures() == fits.runs.len() {
        eprintln!("error: every surrogate model failed — nothing to compare against GT");
        std::process::exit(1);
    }

    let jobs_or_exit = |source: &str, table: &tabular::Table| -> Vec<SimJob> {
        SimJob::from_table(table).unwrap_or_else(|err| {
            eprintln!("error: {source} workload table is unusable: {err}");
            std::process::exit(1);
        })
    };
    let mut sources: Vec<(String, Vec<SimJob>)> =
        vec![("GT".to_string(), jobs_or_exit("GT", &data.train))];
    for (name, synthetic) in fits.successes() {
        sources.push((name.to_string(), jobs_or_exit(name, synthetic)));
    }

    let mut artifact = DownstreamArtifact {
        responses: BTreeMap::new(),
    };

    for policy in BrokerPolicy::ALL {
        println!("\n== brokerage policy: {} ==", policy.name());
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>14} {:>12}",
            "source", "completed", "makespan(h)", "wait(h)", "transfer(h)", "WAN(TB)"
        );
        let mut per_source = BTreeMap::new();
        for (source, jobs) in &sources {
            let mut simulator = GridSimulator::new(
                data.generator.sites(),
                SimConfig {
                    policy,
                    ..SimConfig::default()
                },
            );
            let report = simulator.run(jobs);
            println!(
                "{:<10} {:>10} {:>12.1} {:>12.2} {:>14.3} {:>12.2}",
                source,
                report.completed,
                report.makespan_hours,
                report.mean_wait_hours,
                report.mean_transfer_hours,
                report.wan_bytes / 1e12
            );
            per_source.insert(source.clone(), report);
        }
        artifact
            .responses
            .insert(policy.name().to_string(), per_source);
    }

    println!("\ninterpretation: the closer a model's row is to GT, the better the surrogate");
    println!("serves as a calibration input for the event-based grid simulation.");
    maybe_write_json(&options, &artifact);
}
