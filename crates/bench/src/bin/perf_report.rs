//! Track the `nn` training hot path against frozen baselines and emit
//! `BENCH_nn.json` so the performance trajectory is recorded across PRs.
//!
//! Three kinds of measurements:
//!
//! * **Kernel benches** — the SIMD-dispatched kernels (`matmul`,
//!   `matmul_at_b`, `matmul_a_bt`, `matmul_bias`, blocked `transpose`, layer
//!   forward/backward) against [`nn::matrix::reference`], the seed-state
//!   scalar kernels preserved verbatim for exactly this purpose
//!   (`baseline_kind: "seed_reference"`).
//! * **Large-shape kernel benches** — the packed, cache-blocked driver on
//!   shapes whose `B` operand overflows L1 (512³ and a tall-skinny
//!   4096×64×256) against [`reference::tiled_matmul`], the PR 2
//!   register-tiled kernel frozen verbatim, so the packing/SIMD win of this
//!   round is measured against its immediate predecessor
//!   (`baseline_kind: "pr2_tiled"`).
//! * **Epoch benches** — one training epoch of each of the paper's three
//!   neural models through the current `fit` hot paths:
//!   * TabDDPM vs a faithful re-implementation of the pre-PR 2 epoch loop
//!     (reference kernels, transpose-materializing backward, per-step
//!     allocations, `to_vec` gradient copies);
//!   * TVAE vs the same seed-style loop (reference kernels, allocating
//!     reparameterisation step);
//!   * CTABGAN+ vs the **unfused discriminator double-step** — two
//!     half-batch forward/backward passes and two Adam updates per
//!     discriminator step, on today's kernels — so its `speedup` isolates
//!     the fused-concatenated-batch change.
//!
//! * **Throughput-ladder benches** (schema v3) — the multi-threaded and
//!   `f32` rungs of the packed driver, each gated against its *own* tier so
//!   `--check` always compares like-for-like:
//!   * `matmul_packed_<shape>_t<N>` — the packed driver fanned over the
//!     rayon pool vs the same packed path run sequentially in the same
//!     process (`baseline_kind: "seq_own_dtype"`). Emitted only when the
//!     pool has more than one executor; exempt from the `--check` gate on
//!     single-core hosts, where a parallel fan-out cannot win.
//!   * `matmul_packed_<shape>_f32` — the `f32` instantiation (double SIMD
//!     lanes, half the memory traffic) vs the `f64` packed path
//!     (`baseline_kind: "packed_f64"`).
//!   * `matmul_packed_<shape>_t<N>_f32` — `f32` parallel vs `f32`
//!     sequential (`baseline_kind: "seq_own_dtype"`).
//!   * `mlp_infer_<shape>_f32` — `Mlp32` inference vs the `f64` `Mlp`
//!     (`baseline_kind: "mlp_infer_f64"`).
//! * **Simulator throughput benches** — `htcsim_throughput_queue_<N>`: the
//!   bucketed calendar event queue vs the seed `BinaryHeap` scheduler
//!   (`baseline_kind: "binary_heap"`) under the classic hold model; and
//!   `htcsim_throughput_sim_<N>`: a full N-job simulation through today's
//!   arena/calendar path vs a faithful re-implementation of the seed main
//!   loop — `String`-keyed `HashMap` replica catalogue, per-dispatch
//!   allocations, `BinaryHeap` — frozen verbatim like the seed epoch loops
//!   (`baseline_kind: "seed_sim_loop"`), with the two `SimReport`s asserted
//!   equal inside the harness. Gated at 1.0x like every other unsuffixed
//!   entry.
//! * **Serving bench** — `serve_batching_64x4`: sixty-four 4-row sample
//!   requests answered by one coalesced `sample_batch` pass (the serve
//!   loop's micro-batch scheduler) vs sixty-four sequential `sample` calls
//!   on the same fitted TVAE (`baseline_kind: "unbatched_sample_calls"`),
//!   gated at 1.0x by `--check` like every unsuffixed entry.
//!
//! Every kernel entry carries `threads` and `dtype` fields, and entry
//! *names* encode both (`_t4`, `_f32` suffixes), so a regenerated report
//! never gates a new tier against an old baseline kind — the name↔kind
//! conventions are validated on read-back.
//!
//! After writing the report the binary reads it back through
//! `serde_json::from_str` and validates the schema, so CI's smoke invocation
//! proves both halves (writer and parser) work. With `--check`, any kernel
//! whose measured speedup over its frozen baseline drops below 1.0 fails
//! the run (the CI regression guard).
//!
//! Usage: `perf_report [--quick] [--check] [--out PATH] [--threads N]
//! [--dtype f32|f64]` (default `BENCH_nn.json`). `--threads N` sets
//! `RAYON_NUM_THREADS` before the pool spins up, so one flag controls the
//! fan-out width; `--dtype` restricts which ladder rungs are measured
//! (legacy kernels and epoch benches always run — the schema requires
//! them). Malformed flag values exit with status 2 and a message, never a
//! panic.

use std::collections::HashMap;
use std::time::Instant;

use nn::matrix::reference;
use nn::{
    bce_with_logits, gaussian_kl, standard_normal_matrix, Activation, Adam, AdamConfig,
    CosineDecay, Layer, LinearLayer, LrSchedule, Matrix, Matrix32, Mlp, MlpConfig,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use surrogate::mixed::{mixed_activation, mixed_activation_backward, mixed_reconstruction_loss};
use surrogate::{
    CtabGan, CtabGanConfig, SampleSpec, TabDdpm, TabDdpmConfig, TableCodec, TabularGenerator, Tvae,
    TvaeConfig,
};
use tabular::{Column, FeatureKind, Table};

#[derive(Debug, Serialize, Deserialize)]
struct KernelBench {
    name: String,
    baseline_kind: String,
    /// Pool executors available to the *new* measurement. Entries whose
    /// name carries a `_tN` suffix are explicitly parallel fan-outs;
    /// forced-sequential measurements record 1; unsuffixed dispatched
    /// entries record the pool width they could opportunistically use.
    threads: usize,
    /// Element type of the new measurement: `"f64"` or `"f32"`.
    dtype: String,
    new_ns: f64,
    baseline_ns: f64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct EpochBench {
    baseline_kind: String,
    rows: usize,
    epochs_timed: usize,
    new_epoch_ms: f64,
    baseline_epoch_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    schema_version: u32,
    generated_by: String,
    quick: bool,
    threads: usize,
    /// `available_parallelism()` of the generating host — `--check` uses it
    /// to exempt multi-thread entries that cannot win on a 1-core runner.
    host_cores: usize,
    simd_tier: String,
    kernels: Vec<KernelBench>,
    tabddpm_epoch: EpochBench,
    ctabgan_epoch: EpochBench,
    tvae_epoch: EpochBench,
}

/// Which ladder rungs `--dtype` selects (legacy + epoch benches always run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DtypeFilter {
    Both,
    F64,
    F32,
}

impl DtypeFilter {
    fn includes_f64(self) -> bool {
        self != DtypeFilter::F32
    }

    fn includes_f32(self) -> bool {
        self != DtypeFilter::F64
    }
}

/// Parsed command line.
#[derive(Debug, PartialEq, Eq)]
struct Options {
    quick: bool,
    check: bool,
    out: String,
    threads: Option<usize>,
    dtype: DtypeFilter,
}

/// Panic-free argument parsing; every malformed input comes back as an
/// `Err` message (main exits 2 on it) rather than a panic or a silently
/// ignored flag.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        check: false,
        out: "BENCH_nn.json".to_string(),
        threads: None,
        dtype: DtypeFilter::Both,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--check" => opts.check = true,
            "--out" => {
                opts.out = it
                    .next()
                    .ok_or_else(|| "--out requires a path argument".to_string())?
                    .clone();
            }
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--threads requires a positive integer".to_string())?;
                opts.threads = Some(value.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(
                    || format!("--threads expects a positive integer, got '{value}'"),
                )?);
            }
            "--dtype" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--dtype requires a value (f32 or f64)".to_string())?;
                opts.dtype = match value.as_str() {
                    "f32" => DtypeFilter::F32,
                    "f64" => DtypeFilter::F64,
                    other => return Err(format!("--dtype expects f32 or f64, got '{other}'")),
                };
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

/// Best-of-`reps` wall time of `inner` consecutive runs of `f`, in
/// nanoseconds per run. One untimed warm-up precedes the samples.
fn time_ns(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / inner as f64);
    }
    best
}

fn kernel_entry(name: &str, baseline_kind: &str, new_ns: f64, baseline_ns: f64) -> KernelBench {
    kernel_entry_tiered(
        name,
        baseline_kind,
        rayon::current_num_threads(),
        "f64",
        new_ns,
        baseline_ns,
    )
}

fn kernel_entry_tiered(
    name: &str,
    baseline_kind: &str,
    threads: usize,
    dtype: &str,
    new_ns: f64,
    baseline_ns: f64,
) -> KernelBench {
    KernelBench {
        name: name.to_string(),
        baseline_kind: baseline_kind.to_string(),
        threads,
        dtype: dtype.to_string(),
        new_ns,
        baseline_ns,
        speedup: baseline_ns / new_ns.max(1e-9),
    }
}

fn kernel_benches(quick: bool) -> Vec<KernelBench> {
    // Quick mode still takes enough samples for the --check regression
    // gate (hard 1.0x threshold, per the tracked acceptance criteria) to
    // sit clear of shared-runner timing noise: best-of-5 over 4-run
    // batches. The slimmest margin is the blocked transpose (unchanged
    // since PR 2), which has measured as low as ~1.17x across full runs —
    // if that entry ever flakes below 1.0 on a noisy runner, widen its
    // sampling here rather than loosening the gate.
    let (reps, inner) = if quick { (5, 4) } else { (7, 8) };
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries = Vec::new();

    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 128, 128), (97, 61, 113)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let new_ns = time_ns(reps, inner, || {
            std::hint::black_box(a.matmul(&b));
        });
        let base_ns = time_ns(reps, inner, || {
            std::hint::black_box(reference::matmul(&a, &b));
        });
        entries.push(kernel_entry(
            &format!("matmul_{m}x{k}x{n}"),
            "seed_reference",
            new_ns,
            base_ns,
        ));
    }

    // Large shapes where the packed, cache-blocked driver engages. Fewer
    // inner iterations: a single 512³ product runs for tens of milliseconds
    // on the frozen baseline.
    let (lreps, linner) = if quick { (3, 1) } else { (5, 2) };
    for &(m, k, n) in &[(512usize, 512usize, 512usize), (4096, 64, 256)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let new_ns = time_ns(lreps, linner, || {
            std::hint::black_box(a.matmul(&b));
        });
        let base_ns = time_ns(lreps, linner, || {
            std::hint::black_box(reference::tiled_matmul(&a, &b));
        });
        entries.push(kernel_entry(
            &format!("matmul_packed_{m}x{k}x{n}"),
            "pr2_tiled",
            new_ns,
            base_ns,
        ));
    }

    let a = Matrix::randn(512, 384, 1.0, &mut rng);
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(a.transpose());
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::transpose(&a));
    });
    entries.push(kernel_entry(
        "transpose_512x384",
        "seed_reference",
        new_ns,
        base_ns,
    ));

    let input = Matrix::randn(256, 128, 1.0, &mut rng);
    let grad = Matrix::randn(256, 64, 1.0, &mut rng);
    let weights = Matrix::randn(128, 64, 1.0, &mut rng);
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(input.matmul_at_b(&grad));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&reference::transpose(&input), &grad));
    });
    entries.push(kernel_entry(
        "at_b_256x128_x_256x64",
        "seed_reference",
        new_ns,
        base_ns,
    ));

    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(grad.matmul_a_bt(&weights));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&grad, &reference::transpose(&weights)));
    });
    entries.push(kernel_entry(
        "a_bt_256x64_x_128x64",
        "seed_reference",
        new_ns,
        base_ns,
    ));

    let bias: Vec<f64> = (0..64).map(|i| i as f64 * 0.01).collect();
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(input.matmul_bias(&weights, &bias));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&input, &weights).add_row_vector(&bias));
    });
    entries.push(kernel_entry(
        "fused_affine_256x128x64",
        "seed_reference",
        new_ns,
        base_ns,
    ));

    let mut layer = LinearLayer::new(128, 64, Activation::Relu, &mut rng);
    let mut baseline_layer = BaselineLayer::from_layer(&layer);
    let x = Matrix::randn(256, 128, 1.0, &mut rng);
    let out = layer.forward(&x);
    let new_ns = time_ns(reps, inner, || {
        let y = layer.forward(&x);
        std::hint::black_box(layer.backward(&out));
        std::hint::black_box(y);
    });
    let base_ns = time_ns(reps, inner, || {
        let y = baseline_layer.forward(&x);
        std::hint::black_box(baseline_layer.backward(&out));
        std::hint::black_box(y);
    });
    entries.push(kernel_entry(
        "layer_fwd_bwd_256x128x64",
        "seed_reference",
        new_ns,
        base_ns,
    ));

    entries
}

/// The throughput-ladder rungs (schema v3): multi-threaded packed entries
/// gated against their own sequential tier in the same process, and `f32`
/// entries gated against the `f64` packed path. Every comparison is
/// like-for-like by construction — the names say exactly which tier the
/// entry measures.
fn ladder_benches(quick: bool, dtype: DtypeFilter) -> Vec<KernelBench> {
    let (reps, inner) = if quick { (3, 1) } else { (5, 2) };
    let threads = rayon::current_num_threads();
    let mut rng = StdRng::seed_from_u64(77);
    let mut entries = Vec::new();

    for &(m, k, n) in &[(512usize, 512usize, 512usize), (4096, 64, 256)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        // Own-tier sequential reference: the identical packed path, forced
        // sequential, measured in this very process.
        let seq64_ns = time_ns(reps, inner, || {
            std::hint::black_box(a.matmul_packed_with(&b, false));
        });
        if dtype.includes_f64() && threads > 1 {
            let par_ns = time_ns(reps, inner, || {
                std::hint::black_box(a.matmul_packed_with(&b, true));
            });
            entries.push(kernel_entry_tiered(
                &format!("matmul_packed_{m}x{k}x{n}_t{threads}"),
                "seq_own_dtype",
                threads,
                "f64",
                par_ns,
                seq64_ns,
            ));
        }
        if dtype.includes_f32() {
            let a32 = Matrix32::from_f64(&a);
            let b32 = Matrix32::from_f64(&b);
            let seq32_ns = time_ns(reps, inner, || {
                std::hint::black_box(a32.matmul_packed_with(&b32, false));
            });
            entries.push(kernel_entry_tiered(
                &format!("matmul_packed_{m}x{k}x{n}_f32"),
                "packed_f64",
                1,
                "f32",
                seq32_ns,
                seq64_ns,
            ));
            if threads > 1 {
                let par32_ns = time_ns(reps, inner, || {
                    std::hint::black_box(a32.matmul_packed_with(&b32, true));
                });
                entries.push(kernel_entry_tiered(
                    &format!("matmul_packed_{m}x{k}x{n}_t{threads}_f32"),
                    "seq_own_dtype",
                    threads,
                    "f32",
                    par32_ns,
                    seq32_ns,
                ));
            }
        }
    }

    if dtype.includes_f32() {
        // End-to-end f32 inference: a fitted-shape MLP down-converted once,
        // then timed against the f64 forward pass on the same batch.
        let (mreps, minner) = if quick { (5, 4) } else { (7, 8) };
        let mlp = Mlp::new(&MlpConfig::relu(128, vec![256, 256], 64), &mut rng);
        let mlp32 = mlp.to_f32();
        let x = Matrix::randn(512, 128, 1.0, &mut rng);
        let x32 = Matrix32::from_f64(&x);
        let new_ns = time_ns(mreps, minner, || {
            std::hint::black_box(mlp32.infer(&x32));
        });
        let base_ns = time_ns(mreps, minner, || {
            std::hint::black_box(mlp.infer(&x));
        });
        entries.push(kernel_entry_tiered(
            "mlp_infer_512x128x256x256x64_f32",
            "mlp_infer_f64",
            1,
            "f32",
            new_ns,
            base_ns,
        ));
    }

    entries
}

// ---------------------------------------------------------------------------
// Faithful re-implementation of the pre-PR 2 hot path: reference kernels,
// transpose-materializing backward, per-step clones, the seed-state Adam
// update loop and the two-allocation MSE. These are frozen so future
// optimisation of the live `nn` crate cannot silently drag the baseline
// along with it.
// ---------------------------------------------------------------------------

/// The seed-state Adam (indexed inner loop, gradient slices copied by the
/// caller exactly as the pre-PR `Mlp::apply_gradients` did).
struct BaselineAdam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, (Vec<f64>, Vec<f64>, u64)>,
}

impl BaselineAdam {
    fn new() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    fn update(&mut self, key: usize, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let (m, v, t) = self
            .state
            .entry(key)
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()], 0));
        *t += 1;
        let tf = *t as f64;
        let bias1 = 1.0 - self.beta1.powf(tf);
        let bias2 = 1.0 - self.beta2.powf(tf);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// The seed-state MSE: separate difference, reduction and gradient passes
/// with two allocations.
fn baseline_mse(prediction: &Matrix, target: &Matrix) -> (f64, Matrix) {
    let n = prediction.len() as f64;
    let diff = prediction.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

struct BaselineLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    cache_input: Option<Matrix>,
    cache_pre: Option<Matrix>,
}

impl BaselineLayer {
    /// Clone a (new-style) layer's parameters so both paths do identical math.
    fn from_layer(layer: &LinearLayer) -> Self {
        Self {
            weights: layer.weights.clone(),
            bias: layer.bias.clone(),
            activation: layer.activation,
            grad_weights: Matrix::zeros(layer.in_dim(), layer.out_dim()),
            grad_bias: vec![0.0; layer.out_dim()],
            cache_input: None,
            cache_pre: None,
        }
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        let act = self.activation;
        let pre = reference::matmul(input, &self.weights).add_row_vector(&self.bias);
        let out = pre.map(|v| act.forward(v));
        self.cache_input = Some(input.clone());
        self.cache_pre = Some(pre);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cache_input.as_ref().expect("forward first");
        let pre = self.cache_pre.as_ref().expect("forward first");
        let act = self.activation;
        let grad_pre = grad_output.zip(pre, |g, p| g * act.derivative(p));
        self.grad_weights = reference::matmul(&reference::transpose(input), &grad_pre);
        self.grad_bias = grad_pre.sum_rows();
        reference::matmul(&grad_pre, &reference::transpose(&self.weights))
    }
}

struct BaselineMlp {
    layers: Vec<BaselineLayer>,
}

impl BaselineMlp {
    fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers().iter().map(BaselineLayer::from_layer).collect(),
        }
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn grad_norm(&self) -> f64 {
        let mut sq = 0.0;
        for layer in &self.layers {
            sq += layer.grad_weights.data().iter().map(|g| g * g).sum::<f64>();
            sq += layer.grad_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq.sqrt()
    }

    fn clip_gradients(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in &mut self.layers {
                layer.grad_weights = layer.grad_weights.scale(scale);
                for g in &mut layer.grad_bias {
                    *g *= scale;
                }
            }
        }
    }

    fn apply_gradients(&mut self, optimizer: &mut BaselineAdam, param_group: usize, lr: f64) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let wkey = param_group * 1000 + i * 2;
            let bkey = wkey + 1;
            let grads = layer.grad_weights.data().to_vec();
            optimizer.update(wkey, layer.weights.data_mut(), &grads, lr);
            let bias_grads = layer.grad_bias.clone();
            optimizer.update(bkey, &mut layer.bias, &bias_grads, lr);
        }
    }
}

/// The training table the epoch benches fit: a PanDA-like mix of numerical
/// and categorical columns.
fn epoch_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = ["BNL", "CERN", "SLAC", "IN2P3", "KIT", "TRIUMF"];
    let queues = ["analysis", "production", "test", "merge"];
    let mut cpu = Vec::with_capacity(n);
    let mut ram = Vec::with_capacity(n);
    let mut walltime = Vec::with_capacity(n);
    let mut disk = Vec::with_capacity(n);
    let mut site = Vec::with_capacity(n);
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        cpu.push(rng.gen_range(1.0..64.0));
        ram.push(rng.gen_range(0.5..16.0));
        walltime.push(rng.gen_range(60.0..86_400.0));
        disk.push(rng.gen_range(0.1..500.0));
        site.push(sites[rng.gen_range(0..sites.len())]);
        queue.push(queues[rng.gen_range(0..queues.len())]);
    }
    let mut t = Table::new();
    t.push_column("cpu", Column::Numerical(cpu)).unwrap();
    t.push_column("ram", Column::Numerical(ram)).unwrap();
    t.push_column("walltime", Column::Numerical(walltime))
        .unwrap();
    t.push_column("disk", Column::Numerical(disk)).unwrap();
    t.push_column("site", Column::from_labels(&site)).unwrap();
    t.push_column("queue", Column::from_labels(&queue)).unwrap();
    t
}

/// Per-epoch milliseconds of the current hot path, measured by differencing
/// two full fits with different epoch counts (cancelling fixed per-fit
/// costs: codec fit/encode, weight init). `timed_fit(epochs, reps)` returns
/// best-of-`reps` whole-fit seconds. A noisy host can invert the two
/// measurements; retry with more repetitions, then fall back to the
/// whole-fit upper bound rather than record a nonsense differenced value.
fn differenced_epoch_ms(
    label: &str,
    reps: usize,
    e1: usize,
    e2: usize,
    mut timed_fit: impl FnMut(usize, usize) -> f64,
) -> f64 {
    timed_fit(1, 1); // warm-up (pool spin-up, page faults)
    for attempt in 0..3 {
        let r = reps + attempt;
        let t1 = timed_fit(e1, r);
        let t2 = timed_fit(e2, r);
        if t2 > t1 {
            return ((t2 - t1) * 1e3) / (e2 - e1) as f64;
        }
        eprintln!("perf_report: noisy {label} epoch timing (t1 {t1:.4}s >= t2 {t2:.4}s), retrying");
    }
    eprintln!("perf_report: {label} differencing failed; using whole-fit upper bound");
    timed_fit(e2, reps) * 1e3 / e2 as f64
}

// ---------------------------------------------------------------------------
// TabDDPM epoch bench (vs the seed-kernel baseline loop).
// ---------------------------------------------------------------------------

/// One pre-PR-style TabDDPM training epoch: the exact inner loop the seed
/// shipped (fresh batch/noise/noisy allocations every step, clone-heavy
/// MLP), driven by the same schedule, batch size and RNG pattern as
/// `TabDdpm::fit`.
#[allow(clippy::too_many_arguments)]
fn baseline_tabddpm_epoch(
    denoiser: &mut BaselineMlp,
    adam: &mut BaselineAdam,
    data: &Matrix,
    alpha_bar: &[f64],
    timesteps: usize,
    batch: usize,
    schedule: &CosineDecay,
    step: &mut usize,
    rng: &mut StdRng,
) -> f64 {
    let n = data.rows();
    let width = data.cols();
    let steps_per_epoch = n.div_ceil(batch);
    let mut epoch_loss = 0.0;
    for _ in 0..steps_per_epoch {
        let lr = schedule.lr_at(*step);
        *step += 1;

        let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
        let x0 = data.take_rows(&idx);

        let ts: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..timesteps)).collect();
        let t_frac: Vec<f64> = ts
            .iter()
            .map(|&t| (t + 1) as f64 / timesteps as f64)
            .collect();
        let noise = standard_normal_matrix(batch, width, rng);

        let mut x_noisy = Matrix::zeros(batch, width);
        for (r, &t) in ts.iter().enumerate() {
            let ab = alpha_bar[t];
            let (sa, sb) = (ab.sqrt(), (1.0 - ab).sqrt());
            for c in 0..width {
                x_noisy.set(r, c, sa * x0.get(r, c) + sb * noise.get(r, c));
            }
        }

        let mut t_cols = Matrix::zeros(batch, 2);
        for (r, &t) in t_frac.iter().enumerate() {
            t_cols.set(r, 0, t);
            t_cols.set(r, 1, (t * std::f64::consts::PI).sin());
        }
        let input = x_noisy.hconcat(&t_cols);

        let predicted = denoiser.forward(&input);
        let (loss, grad) = baseline_mse(&predicted, &noise);
        epoch_loss += loss;
        denoiser.backward(&grad);
        denoiser.clip_gradients(5.0);
        denoiser.apply_gradients(adam, 0, lr);
    }
    epoch_loss / steps_per_epoch as f64
}

/// Cosine ᾱ schedule matching `TabDdpm` (re-derived here because the model
/// keeps it private; validated against `TabDdpm::alpha_bar()` below).
fn cosine_alpha_bar(timesteps: usize) -> Vec<f64> {
    let s = 0.008;
    let f = |t: f64| {
        ((t / timesteps as f64 + s) / (1.0 + s) * std::f64::consts::FRAC_PI_2)
            .cos()
            .powi(2)
    };
    let f0 = f(0.0);
    (1..=timesteps)
        .map(|t| (f(t as f64) / f0).clamp(1e-5, 0.9999))
        .collect()
}

fn tabddpm_epoch_bench(quick: bool) -> EpochBench {
    let rows = if quick { 512 } else { 2048 };
    let (e1, e2, reps) = if quick { (1, 3, 1) } else { (2, 10, 2) };
    let epochs = e2 - e1;
    let cfg = TabDdpmConfig {
        epochs: e2,
        ..TabDdpmConfig::fast()
    };
    let train = epoch_table(rows, 99);

    let new_epoch_ms = differenced_epoch_ms("tabddpm", reps, e1, e2, |epochs, reps| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut model = TabDdpm::new(TabDdpmConfig {
                epochs,
                ..cfg.clone()
            });
            let start = Instant::now();
            model.fit(&train).expect("TabDDPM fit");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    });
    // Unfitted model: `alpha_bar` is derived in the constructor.
    let model = TabDdpm::new(cfg.clone());

    // --- Pre-PR hot path: same math, seed-state kernels and allocations. ---
    let codec = TableCodec::fit(&train).expect("codec fit");
    let data = codec.encode(&train).expect("codec encode");
    let width = codec.encoded_width();
    let alpha_bar = cosine_alpha_bar(cfg.timesteps);
    assert_eq!(
        alpha_bar.as_slice(),
        model.alpha_bar(),
        "baseline schedule drifted from the model's"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let template = Mlp::new(
        &MlpConfig::relu(width + 2, cfg.hidden.clone(), width),
        &mut rng,
    );
    let mut denoiser = BaselineMlp::from_mlp(&template);
    let mut adam = BaselineAdam::new();
    let n = data.rows();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    let schedule = CosineDecay {
        base_lr: cfg.learning_rate,
        min_lr: cfg.learning_rate * 0.01,
        total_steps: cfg.epochs * steps_per_epoch,
        warmup_steps: 0,
    };
    let mut step = 0usize;
    let start = Instant::now();
    let mut last_loss = f64::NAN;
    for _ in 0..epochs {
        last_loss = baseline_tabddpm_epoch(
            &mut denoiser,
            &mut adam,
            &data,
            &alpha_bar,
            cfg.timesteps,
            batch,
            &schedule,
            &mut step,
            &mut rng,
        );
    }
    let baseline_epoch_ms = start.elapsed().as_secs_f64() * 1e3 / epochs as f64;
    assert!(
        last_loss.is_finite(),
        "baseline training diverged; comparison would be meaningless"
    );

    EpochBench {
        baseline_kind: "seed_epoch_loop".to_string(),
        rows,
        epochs_timed: epochs,
        new_epoch_ms,
        baseline_epoch_ms,
        speedup: baseline_epoch_ms / new_epoch_ms.max(1e-9),
    }
}

// ---------------------------------------------------------------------------
// CTABGAN+ epoch bench (vs the unfused discriminator double-step).
// ---------------------------------------------------------------------------

/// The conditioning column `CtabGan::fit` picks (largest-cardinality
/// categorical span) and its training marginal, replicated here for the
/// baseline loop.
fn choose_condition(codec: &TableCodec, data: &Matrix) -> Option<(usize, Vec<f64>)> {
    codec
        .spans()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == FeatureKind::Categorical)
        .max_by_key(|(_, s)| s.width)
        .map(|(idx, span)| {
            let mut marginal = vec![0.0; span.width];
            for r in 0..data.rows() {
                let block = &data.row(r)[span.start..span.start + span.width];
                if let Some(code) = block.iter().position(|&v| v > 0.5) {
                    marginal[code] += 1.0;
                }
            }
            let total: f64 = marginal.iter().sum::<f64>().max(1.0);
            for m in &mut marginal {
                *m /= total;
            }
            (idx, marginal)
        })
}

/// Conditional one-hot batch from the training marginal (the baseline's
/// allocating variant, matching the pre-fusion loop).
fn sample_condition(
    condition: &Option<(usize, Vec<f64>)>,
    codec: &TableCodec,
    rows: usize,
    rng: &mut StdRng,
) -> Matrix {
    let Some((span_idx, marginal)) = condition else {
        return Matrix::zeros(rows, 0);
    };
    let width = codec.spans()[*span_idx].width;
    let mut out = Matrix::zeros(rows, width);
    for r in 0..rows {
        let mut u: f64 = rng.gen_range(0.0..1.0);
        let mut chosen = width - 1;
        for (i, &p) in marginal.iter().enumerate() {
            if u < p {
                chosen = i;
                break;
            }
            u -= p;
        }
        out.set(r, chosen, 1.0);
    }
    out
}

/// One pre-fusion CTABGAN+ training epoch: per discriminator step, two
/// half-batch forward/backward passes and two Adam updates (real then
/// fake), with per-step `hconcat` batch assembly — exactly the loop shipped
/// before the fused double-step, but on today's kernels, so the measured
/// ratio isolates the fusion itself.
#[allow(clippy::too_many_arguments)]
fn baseline_ctabgan_epoch(
    generator: &mut Mlp,
    discriminator: &mut Mlp,
    adam: &mut Adam,
    data: &Matrix,
    codec: &TableCodec,
    condition: &Option<(usize, Vec<f64>)>,
    cfg: &CtabGanConfig,
    schedule: &CosineDecay,
    step: &mut usize,
    rng: &mut StdRng,
) -> f64 {
    let n = data.rows();
    let width = codec.encoded_width();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    let mut d_loss_sum = 0.0;
    let mut g_loss_sum = 0.0;
    for _ in 0..steps_per_epoch {
        let lr = schedule.lr_at(*step);
        *step += 1;

        for _ in 0..cfg.discriminator_steps {
            let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
            let real = data.take_rows(&idx);
            let cond = sample_condition(condition, codec, batch, rng);

            let z = standard_normal_matrix(batch, cfg.latent_dim, rng);
            let g_in = z.hconcat(&cond);
            let fake_raw = generator.infer(&g_in);
            let fake = mixed_activation(codec.spans(), &fake_raw);

            let d_real_in = real.hconcat(&cond);
            let d_fake_in = fake.hconcat(&cond);

            let real_logits = discriminator.forward(&d_real_in);
            let (loss_real, grad_real) =
                bce_with_logits(&real_logits, &Matrix::filled(batch, 1, 1.0));
            discriminator.backward(&grad_real);
            discriminator.clip_gradients(5.0);
            discriminator.apply_gradients(adam, 10, lr);

            let fake_logits = discriminator.forward(&d_fake_in);
            let (loss_fake, grad_fake) =
                bce_with_logits(&fake_logits, &Matrix::filled(batch, 1, 0.0));
            discriminator.backward(&grad_fake);
            discriminator.clip_gradients(5.0);
            discriminator.apply_gradients(adam, 10, lr);

            d_loss_sum += loss_real + loss_fake;
        }

        let cond = sample_condition(condition, codec, batch, rng);
        let z = standard_normal_matrix(batch, cfg.latent_dim, rng);
        let g_in = z.hconcat(&cond);
        let fake_raw = generator.forward(&g_in);
        let fake = mixed_activation(codec.spans(), &fake_raw);
        let d_in = fake.hconcat(&cond);

        let logits = discriminator.forward(&d_in);
        let (g_loss, grad_logits) = bce_with_logits(&logits, &Matrix::filled(batch, 1, 1.0));
        g_loss_sum += g_loss;

        let grad_d_in = discriminator.backward(&grad_logits);
        let grad_fake = grad_d_in.slice_cols(0, width);
        let grad_fake_raw = mixed_activation_backward(codec.spans(), &fake, &grad_fake);
        generator.backward(&grad_fake_raw);
        generator.clip_gradients(5.0);
        generator.apply_gradients(adam, 20, lr);
    }
    (g_loss_sum + d_loss_sum) / steps_per_epoch as f64
}

fn ctabgan_epoch_bench(quick: bool) -> EpochBench {
    let rows = if quick { 512 } else { 2048 };
    let (e1, e2, reps) = if quick { (1, 3, 1) } else { (2, 10, 2) };
    let epochs = e2 - e1;
    let cfg = CtabGanConfig {
        epochs: e2,
        ..CtabGanConfig::fast()
    };
    let train = epoch_table(rows, 99);

    let new_epoch_ms = differenced_epoch_ms("ctabgan", reps, e1, e2, |epochs, reps| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut model = CtabGan::new(CtabGanConfig {
                epochs,
                ..cfg.clone()
            });
            let start = Instant::now();
            model.fit(&train).expect("CTABGAN fit");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    });

    // --- Unfused baseline: identical model setup, pre-fusion update loop. ---
    let codec = TableCodec::fit(&train).expect("codec fit");
    let data = codec.encode(&train).expect("codec encode");
    let width = codec.encoded_width();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let condition = if cfg.conditional {
        choose_condition(&codec, &data)
    } else {
        None
    };
    let cond_width = condition
        .as_ref()
        .map_or(0, |(idx, _)| codec.spans()[*idx].width);
    let mut generator = Mlp::new(
        &MlpConfig::relu(
            cfg.latent_dim + cond_width,
            cfg.generator_hidden.clone(),
            width,
        ),
        &mut rng,
    );
    let mut discriminator = Mlp::new(
        &MlpConfig::relu(width + cond_width, cfg.discriminator_hidden.clone(), 1),
        &mut rng,
    );
    let mut adam = Adam::new(AdamConfig::default());
    let n = data.rows();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    let schedule = CosineDecay {
        base_lr: cfg.learning_rate,
        min_lr: cfg.learning_rate * 0.01,
        total_steps: cfg.epochs * steps_per_epoch,
        warmup_steps: 0,
    };
    let mut step = 0usize;
    let start = Instant::now();
    let mut last_loss = f64::NAN;
    for _ in 0..epochs {
        last_loss = baseline_ctabgan_epoch(
            &mut generator,
            &mut discriminator,
            &mut adam,
            &data,
            &codec,
            &condition,
            &cfg,
            &schedule,
            &mut step,
            &mut rng,
        );
    }
    let baseline_epoch_ms = start.elapsed().as_secs_f64() * 1e3 / epochs as f64;
    assert!(
        last_loss.is_finite(),
        "baseline CTABGAN training diverged; comparison would be meaningless"
    );

    EpochBench {
        baseline_kind: "unfused_discriminator_double_step".to_string(),
        rows,
        epochs_timed: epochs,
        new_epoch_ms,
        baseline_epoch_ms,
        speedup: baseline_epoch_ms / new_epoch_ms.max(1e-9),
    }
}

// ---------------------------------------------------------------------------
// TVAE epoch bench (vs the seed-kernel baseline loop).
// ---------------------------------------------------------------------------

/// One pre-PR-style TVAE training epoch: the seed inner loop (fresh batch
/// and noise allocations every step, clone-heavy reference-kernel MLPs),
/// driven by the same schedule, batch size and shuffling pattern as
/// `Tvae::fit`.
#[allow(clippy::too_many_arguments)]
fn baseline_tvae_epoch(
    encoder: &mut BaselineMlp,
    decoder: &mut BaselineMlp,
    adam: &mut BaselineAdam,
    data: &Matrix,
    codec: &TableCodec,
    cfg: &TvaeConfig,
    indices: &mut [usize],
    schedule: &CosineDecay,
    step: &mut usize,
    rng: &mut StdRng,
) -> f64 {
    let n = data.rows();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    indices.shuffle(rng);
    let mut epoch_loss = 0.0;
    for chunk in indices.chunks(batch) {
        let x = data.take_rows(chunk);
        let lr = schedule.lr_at(*step);
        *step += 1;

        let enc_out = encoder.forward(&x);
        let mu = enc_out.slice_cols(0, cfg.latent_dim);
        let logvar = enc_out
            .slice_cols(cfg.latent_dim, 2 * cfg.latent_dim)
            .map(|v| v.clamp(-8.0, 8.0));

        let eps = standard_normal_matrix(x.rows(), cfg.latent_dim, rng);
        let std = logvar.map(|v| (0.5 * v).exp());
        let z = mu.add(&eps.mul(&std));

        let recon = decoder.forward(&z);
        let (recon_loss, grad_recon) = mixed_reconstruction_loss(codec.spans(), &recon, &x);
        let (kl_loss, grad_kl_mu, grad_kl_logvar) = gaussian_kl(&mu, &logvar);
        epoch_loss += recon_loss + cfg.kl_weight * kl_loss;

        let grad_z = decoder.backward(&grad_recon);
        let grad_mu = grad_z.add(&grad_kl_mu.scale(cfg.kl_weight));
        let grad_logvar_from_z = grad_z.mul(&eps).mul(&std).scale(0.5);
        let grad_logvar = grad_logvar_from_z.add(&grad_kl_logvar.scale(cfg.kl_weight));

        let grad_enc_out = grad_mu.hconcat(&grad_logvar);
        encoder.backward(&grad_enc_out);

        encoder.clip_gradients(5.0);
        decoder.clip_gradients(5.0);
        encoder.apply_gradients(adam, 0, lr);
        decoder.apply_gradients(adam, 1, lr);
    }
    epoch_loss / steps_per_epoch as f64
}

fn tvae_epoch_bench(quick: bool) -> EpochBench {
    let rows = if quick { 512 } else { 2048 };
    let (e1, e2, reps) = if quick { (1, 3, 1) } else { (2, 10, 2) };
    let epochs = e2 - e1;
    let cfg = TvaeConfig {
        epochs: e2,
        ..TvaeConfig::fast()
    };
    let train = epoch_table(rows, 99);

    let new_epoch_ms = differenced_epoch_ms("tvae", reps, e1, e2, |epochs, reps| {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut model = Tvae::new(TvaeConfig {
                epochs,
                ..cfg.clone()
            });
            let start = Instant::now();
            model.fit(&train).expect("TVAE fit");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    });

    // --- Seed-style baseline: reference kernels, allocating loop. ---
    let codec = TableCodec::fit(&train).expect("codec fit");
    let data = codec.encode(&train).expect("codec encode");
    let width = codec.encoded_width();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let enc_template = Mlp::new(
        &MlpConfig::relu(width, cfg.hidden.clone(), 2 * cfg.latent_dim),
        &mut rng,
    );
    let dec_template = Mlp::new(
        &MlpConfig::relu(cfg.latent_dim, cfg.hidden.clone(), width),
        &mut rng,
    );
    let mut encoder = BaselineMlp::from_mlp(&enc_template);
    let mut decoder = BaselineMlp::from_mlp(&dec_template);
    let mut adam = BaselineAdam::new();
    let n = data.rows();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    let schedule = CosineDecay {
        base_lr: cfg.learning_rate,
        min_lr: cfg.learning_rate * 0.01,
        total_steps: cfg.epochs * steps_per_epoch,
        warmup_steps: 0,
    };
    let mut indices: Vec<usize> = (0..n).collect();
    let mut step = 0usize;
    let start = Instant::now();
    let mut last_loss = f64::NAN;
    for _ in 0..epochs {
        last_loss = baseline_tvae_epoch(
            &mut encoder,
            &mut decoder,
            &mut adam,
            &data,
            &codec,
            &cfg,
            &mut indices,
            &schedule,
            &mut step,
            &mut rng,
        );
    }
    let baseline_epoch_ms = start.elapsed().as_secs_f64() * 1e3 / epochs as f64;
    assert!(
        last_loss.is_finite(),
        "baseline TVAE training diverged; comparison would be meaningless"
    );

    EpochBench {
        baseline_kind: "seed_epoch_loop".to_string(),
        rows,
        epochs_timed: epochs,
        new_epoch_ms,
        baseline_epoch_ms,
        speedup: baseline_epoch_ms / new_epoch_ms.max(1e-9),
    }
}

// ---------------------------------------------------------------------------
// Report emission, validation and the CI regression guard.
// ---------------------------------------------------------------------------

/// Parse an emitted report back through the typed `Deserialize` path (no
/// `Value` accessor chains) and check its invariants: a malformed or
/// field-stripped document fails at the parse, and a structurally valid one
/// must carry positive finite timings throughout.
/// The explicit thread-count suffix of a ladder entry name (`_t4`,
/// `_t4_f32`), if present.
fn name_thread_suffix(name: &str) -> Option<usize> {
    let base = name.strip_suffix("_f32").unwrap_or(name);
    let idx = base.rfind("_t")?;
    base[idx + 2..].parse().ok()
}

/// Enforce the name↔field conventions that keep `--check` like-for-like:
/// a `_f32` suffix if and only if `dtype == "f32"`; a `_tN` suffix if and
/// only if the entry is gated against its own sequential tier
/// (`seq_own_dtype`), with `N` equal to the recorded thread count. A
/// regenerated report can therefore never compare a new tier's timing
/// against a baseline of a different kind under the same name.
fn check_name_conventions(entry: &KernelBench) -> Result<(), String> {
    let is_f32_name = entry.name.ends_with("_f32");
    if is_f32_name != (entry.dtype == "f32") {
        return Err(format!(
            "kernel '{}': name/dtype mismatch (dtype '{}')",
            entry.name, entry.dtype
        ));
    }
    match name_thread_suffix(&entry.name) {
        Some(t) => {
            if entry.baseline_kind != "seq_own_dtype" {
                return Err(format!(
                    "kernel '{}': _t{t} entries must gate against their own \
                     sequential tier, got baseline_kind '{}'",
                    entry.name, entry.baseline_kind
                ));
            }
            if t != entry.threads {
                return Err(format!(
                    "kernel '{}': name says {t} threads, field says {}",
                    entry.name, entry.threads
                ));
            }
        }
        None => {
            if entry.baseline_kind == "seq_own_dtype" {
                return Err(format!(
                    "kernel '{}': seq_own_dtype entries must carry a _tN suffix",
                    entry.name
                ));
            }
        }
    }
    Ok(())
}

fn validate_text(text: &str) -> Result<Report, String> {
    let report: Report = serde_json::from_str(text).map_err(|e| format!("parse: {e}"))?;
    if report.kernels.is_empty() {
        return Err("'kernels' array is empty".to_string());
    }
    if report.host_cores == 0 {
        return Err("'host_cores' must be positive".to_string());
    }
    for entry in &report.kernels {
        if entry.name.is_empty() || entry.baseline_kind.is_empty() {
            return Err("kernel entry with an empty name or baseline_kind".to_string());
        }
        if entry.threads == 0 {
            return Err(format!("kernel '{}' has zero threads", entry.name));
        }
        if entry.dtype != "f64" && entry.dtype != "f32" {
            return Err(format!(
                "kernel '{}' has unknown dtype '{}'",
                entry.name, entry.dtype
            ));
        }
        check_name_conventions(entry)?;
        for (field, v) in [
            ("new_ns", entry.new_ns),
            ("baseline_ns", entry.baseline_ns),
            ("speedup", entry.speedup),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "kernel '{}' field '{field}' is not a positive number",
                    entry.name
                ));
            }
        }
    }
    for (model, epoch) in [
        ("tabddpm_epoch", &report.tabddpm_epoch),
        ("ctabgan_epoch", &report.ctabgan_epoch),
        ("tvae_epoch", &report.tvae_epoch),
    ] {
        if !epoch.speedup.is_finite() || epoch.speedup <= 0.0 {
            return Err(format!("{model}.speedup is not a positive number"));
        }
    }
    if report.simd_tier.is_empty() {
        return Err("empty 'simd_tier'".to_string());
    }
    Ok(report)
}

/// Re-read the emitted report and validate the schema, proving the JSON both
/// renders and parses typed (the CI smoke test relies on this).
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    validate_text(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(())
}

/// Regression guard: every kernel must still beat its frozen baseline.
/// Returns the offending entries (empty = pass). Works off the in-memory
/// measurements — the file round-trip is already proven by [`validate`].
///
/// Exemption: `_tN` entries gate a parallel fan-out against its own
/// sequential tier, which cannot win on a single-core host — the workers
/// time-slice one core and only add coordination overhead. Those entries
/// are still *recorded* (the committed artifact keeps the honest number)
/// but are skipped by the gate when `host_cores == 1`.
fn kernel_regressions(kernels: &[KernelBench], host_cores: usize) -> Vec<String> {
    kernels
        .iter()
        .filter(|k| k.speedup < 1.0)
        .filter(|k| !(host_cores == 1 && k.threads > 1 && k.baseline_kind == "seq_own_dtype"))
        .map(|k| format!("{} ({:.3}x)", k.name, k.speedup))
        .collect()
}

// ---------------------------------------------------------------------------
// Faithful re-implementation of the seed htcsim main loop: `String`-keyed
// `HashMap` replica catalogue, a freshly-allocated feasible-site `Vec` per
// brokerage decision, a reallocated pending list per job finish, and the
// seed `BinaryHeap` scheduler. Frozen verbatim (like the seed epoch loops
// above) so the `htcsim_throughput_sim` entry measures the whole tentpole —
// arena SoA storage, interned dataset/site ids, the allocation-free event
// loop and the calendar queue — against the loop the seed shipped.
// ---------------------------------------------------------------------------
mod seed_sim {
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashMap};

    use htcsim::{BrokerPolicy, SimConfig, SimJob, SimReport, SimSite, TransferModel};
    use pandasim::SiteCatalog;

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum EventKind {
        JobArrival { job: usize },
        TransferComplete { job: usize, site: usize },
        JobFinish { job: usize, site: usize },
    }

    #[derive(Clone, Copy, PartialEq)]
    struct Event {
        time: f64,
        sequence: u64,
        kind: EventKind,
    }

    impl Eq for Event {}

    impl Ord for Event {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .partial_cmp(&self.time)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.sequence.cmp(&self.sequence))
        }
    }

    impl PartialOrd for Event {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    #[derive(Default)]
    struct EventQueue {
        heap: BinaryHeap<Event>,
        next_sequence: u64,
    }

    impl EventQueue {
        fn push(&mut self, time: f64, kind: EventKind) {
            let sequence = self.next_sequence;
            self.next_sequence += 1;
            self.heap.push(Event {
                time,
                sequence,
                kind,
            });
        }

        fn pop(&mut self) -> Option<Event> {
            self.heap.pop()
        }
    }

    #[derive(Default)]
    struct ReplicaCatalog {
        replicas: HashMap<String, Vec<usize>>,
    }

    impl ReplicaCatalog {
        fn add_replica(&mut self, dataset: &str, site: usize) {
            let entry = self.replicas.entry(dataset.to_string()).or_default();
            if !entry.contains(&site) {
                entry.push(site);
            }
        }

        fn has_replica(&self, dataset: &str, site: usize) -> bool {
            self.replicas
                .get(dataset)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .contains(&site)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn choose(
        policy: BrokerPolicy,
        sites: &[SimSite],
        cores: u32,
        dataset: &str,
        catalog: &ReplicaCatalog,
        transfer: &TransferModel,
        bytes: f64,
        round_robin_cursor: &mut usize,
    ) -> Option<usize> {
        let feasible: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.can_run(cores))
            .map(|(i, _)| i)
            .collect();
        if feasible.is_empty() {
            return None;
        }
        match policy {
            BrokerPolicy::RoundRobin => {
                for _ in 0..sites.len() {
                    let candidate = *round_robin_cursor % sites.len();
                    *round_robin_cursor += 1;
                    if feasible.contains(&candidate) {
                        return Some(candidate);
                    }
                }
                feasible.first().copied()
            }
            BrokerPolicy::LeastLoaded => feasible.into_iter().max_by(|&a, &b| {
                sites[a]
                    .free_slots()
                    .cmp(&sites[b].free_slots())
                    .then_with(|| b.cmp(&a))
            }),
            BrokerPolicy::DataLocality => feasible.into_iter().min_by(|&a, &b| {
                let cost = |i: usize| {
                    let local = catalog.has_replica(dataset, i);
                    let t = transfer.transfer_hours(bytes, local);
                    t - 1e-3 * sites[i].free_slots() as f64
                };
                cost(a)
                    .partial_cmp(&cost(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            }),
        }
    }

    /// The seed `GridSimulator::run`, verbatim.
    pub fn run(site_catalog: &SiteCatalog, config: &SimConfig, jobs: &[SimJob]) -> SimReport {
        let mut sites: Vec<SimSite> = site_catalog
            .sites()
            .iter()
            .map(|s| {
                let slots = ((s.slots as f64 * config.slot_fraction).round() as u32).max(8);
                SimSite::new(&s.name, slots, s.hs23_per_core)
            })
            .collect();
        let mut catalog = ReplicaCatalog::default();
        for job in jobs {
            if let Some(origin) = &job.origin_site {
                if let Some(idx) = sites.iter().position(|s| &s.name == origin) {
                    catalog.add_replica(&job.dataset, idx);
                }
            }
        }

        let mut queue = EventQueue::default();
        for (i, job) in jobs.iter().enumerate() {
            queue.push(job.arrival_hours.max(0.0), EventKind::JobArrival { job: i });
        }

        let mut pending: Vec<usize> = Vec::new();
        let mut wait_hours = vec![0.0f64; jobs.len()];
        let mut transfer_hours = vec![0.0f64; jobs.len()];
        let mut arrival_time = vec![0.0f64; jobs.len()];
        let mut completed = 0usize;
        let mut makespan: f64 = 0.0;
        let mut wan_bytes = 0.0f64;
        let mut rr_cursor = 0usize;

        let dispatch = |job_idx: usize,
                        now: f64,
                        sites: &mut Vec<SimSite>,
                        catalog: &ReplicaCatalog,
                        queue: &mut EventQueue,
                        wan_bytes: &mut f64,
                        transfer_hours: &mut Vec<f64>,
                        rr_cursor: &mut usize|
         -> bool {
            let job = &jobs[job_idx];
            let choice = choose(
                config.policy,
                sites,
                job.cores,
                &job.dataset,
                catalog,
                &config.transfer,
                job.input_bytes,
                rr_cursor,
            );
            let Some(site_idx) = choice else {
                return false;
            };
            sites[site_idx].acquire(job.cores);
            let local = catalog.has_replica(&job.dataset, site_idx);
            let t_hours = config.transfer.transfer_hours(job.input_bytes, local);
            if !local {
                *wan_bytes += job.input_bytes;
            }
            transfer_hours[job_idx] = t_hours;
            queue.push(
                now + t_hours,
                EventKind::TransferComplete {
                    job: job_idx,
                    site: site_idx,
                },
            );
            true
        };

        while let Some(event) = queue.pop() {
            let now = event.time;
            match event.kind {
                EventKind::JobArrival { job } => {
                    arrival_time[job] = now;
                    if !dispatch(
                        job,
                        now,
                        &mut sites,
                        &catalog,
                        &mut queue,
                        &mut wan_bytes,
                        &mut transfer_hours,
                        &mut rr_cursor,
                    ) {
                        pending.push(job);
                    } else {
                        wait_hours[job] = 0.0;
                    }
                }
                EventKind::TransferComplete { job, site } => {
                    let speed = sites[site].hs23_per_core / config.reference_hs23;
                    let wall = (jobs[job].cpu_hours / jobs[job].cores as f64 / speed).max(1e-4);
                    queue.push(now + wall, EventKind::JobFinish { job, site });
                }
                EventKind::JobFinish { job, site } => {
                    let speed = sites[site].hs23_per_core / config.reference_hs23;
                    let wall = (jobs[job].cpu_hours / jobs[job].cores as f64 / speed).max(1e-4);
                    sites[site].release(jobs[job].cores, wall);
                    completed += 1;
                    makespan = makespan.max(now);

                    let mut still_pending = Vec::new();
                    for &p in &pending {
                        if dispatch(
                            p,
                            now,
                            &mut sites,
                            &catalog,
                            &mut queue,
                            &mut wan_bytes,
                            &mut transfer_hours,
                            &mut rr_cursor,
                        ) {
                            wait_hours[p] = now - arrival_time[p];
                        } else {
                            still_pending.push(p);
                        }
                    }
                    pending = still_pending;
                }
            }
        }

        let n = jobs.len().max(1) as f64;
        let mean_utilization = if makespan > 0.0 {
            sites.iter().map(|s| s.utilization(makespan)).sum::<f64>() / sites.len().max(1) as f64
        } else {
            0.0
        };
        SimReport {
            policy: config.policy.name().to_string(),
            completed,
            makespan_hours: makespan,
            mean_wait_hours: wait_hours.iter().sum::<f64>() / n,
            mean_transfer_hours: transfer_hours.iter().sum::<f64>() / n,
            wan_bytes,
            mean_utilization,
        }
    }
}

/// Simulator throughput (the planetary-scale htcsim tentpole), in two cuts:
///
/// * `htcsim_throughput_queue_<N>` — the calendar queue vs the seed
///   `BinaryHeap` scheduler (`baseline_kind: "binary_heap"`) under the
///   classic "hold" model (N pop→push transitions at a steady queue size),
///   the access pattern of a discrete-event simulation;
/// * `htcsim_throughput_sim_<N>` — a full N-job simulation through today's
///   path (arena SoA storage, interned dataset/site ids, allocation-free
///   event loop, calendar queue) vs the frozen [`seed_sim`] loop
///   (`baseline_kind: "seed_sim_loop"`), with the two `SimReport`s asserted
///   equal inside the harness (the byte-identity pin).
///
/// Both are single-threaded f64 entries gated at 1.0x by `--check` like
/// every other unsuffixed entry.
fn htcsim_benches(quick: bool) -> Vec<KernelBench> {
    use htcsim::{
        CalendarQueue, EventKind, EventScheduler, GridSimulator, HeapQueue, JobArena, SimConfig,
        SimJob,
    };
    use pandasim::SiteCatalog;

    // Classic "hold" benchmark for DES priority queues: prime the queue
    // with `n` events, then run pop→push transitions where each push lands
    // at the popped time plus a service increment — a discrete-event steady
    // state, in which (like the simulator) nothing is ever scheduled behind
    // the clock. Increments mix WAN-latency transfer completions, job
    // runtimes and far-future stragglers.
    fn hold<Q: EventScheduler>(n: usize, transitions: usize) -> f64 {
        let mut queue = Q::default();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64, state)
        };
        for i in 0..n {
            let (unit, _) = next();
            queue.push(unit * 168.0, EventKind::JobArrival { job: i as u32 });
        }
        let mut last = 0.0;
        for i in 0..transitions {
            let event = queue.pop().expect("primed queue never drains");
            last = event.time;
            let (unit, s) = next();
            let delta = match s % 8 {
                0 => unit * 0.1,      // transfer completions
                1..=5 => unit * 12.0, // job runtimes
                _ => unit * 400.0,    // stragglers / future arrivals
            };
            queue.push(
                event.time + delta,
                EventKind::JobFinish {
                    job: i as u32,
                    site: 0,
                },
            );
        }
        last
    }

    // Synthetic planetary workload at a subcritical load factor (constant
    // ~150 jobs/hour against the catalogue's slot capacity, so the pending
    // queue stays bounded and the run measures steady-state throughput,
    // not backlog pathology).
    fn synthetic_jobs(n_jobs: usize, n_sites: usize) -> (SiteCatalog, Vec<SimJob>) {
        let catalog = SiteCatalog::atlas_like(n_sites);
        let site_names: Vec<String> = catalog.sites().iter().map(|s| s.name.clone()).collect();
        let mut jobs = Vec::with_capacity(n_jobs);
        let mut state = 0x2545f4914f6cdd1du64;
        for i in 0..n_jobs {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            jobs.push(SimJob {
                arrival_hours: unit * (n_jobs as f64 / 150.0),
                cores: if i % 7 == 0 { 8 } else { 4 },
                cpu_hours: 0.5 + unit * 6.0,
                dataset: format!("ds{}", state % 512),
                input_bytes: (state % 1_000) as f64 * 1e9,
                origin_site: Some(site_names[(state % site_names.len() as u64) as usize].clone()),
            });
        }
        (catalog, jobs)
    }

    let mut entries = Vec::new();

    // Deep queues are where the calendar's flat cost structurally beats the
    // heap's `O(log n)` (the margin at shallow sizes is noise-level), so the
    // gate holds the queue at planetary depth: hundreds of thousands of
    // in-flight events.
    let (n_held, transitions) = if quick {
        (200_000, 400_000)
    } else {
        (500_000, 1_000_000)
    };
    let (reps, inner) = if quick { (5, 1) } else { (7, 2) };
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(hold::<CalendarQueue>(n_held, transitions));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(hold::<HeapQueue>(n_held, transitions));
    });
    entries.push(kernel_entry_tiered(
        &format!("htcsim_throughput_queue_{transitions}"),
        "binary_heap",
        1,
        "f64",
        new_ns,
        base_ns,
    ));

    let n_jobs = if quick { 10_000 } else { 50_000 };
    let (catalog, jobs) = synthetic_jobs(n_jobs, 40);
    let config = SimConfig::default();
    // Correctness pin inside the timed harness: today's arena/calendar path
    // must reproduce the seed loop's physics exactly on this workload.
    let new_report = {
        let arena = JobArena::from_jobs(&jobs);
        let mut simulator = GridSimulator::new(&catalog, config.clone());
        simulator.run_arena(&arena)
    };
    let seed_report = seed_sim::run(&catalog, &config, &jobs);
    assert_eq!(
        serde_json::to_string(&new_report).expect("report serializes"),
        serde_json::to_string(&seed_report).expect("report serializes"),
        "arena/calendar simulator diverged from the seed loop on the throughput workload"
    );
    let sreps = if quick { 3 } else { 5 };
    // Arena construction (string interning) is timed as part of the new
    // path: it is the real cost of entering SoA storage from `SimJob`s.
    let new_ns = time_ns(sreps, 1, || {
        let arena = JobArena::from_jobs(&jobs);
        let mut simulator = GridSimulator::new(&catalog, config.clone());
        std::hint::black_box(simulator.run_arena(&arena));
    });
    let base_ns = time_ns(sreps, 1, || {
        std::hint::black_box(seed_sim::run(&catalog, &config, &jobs));
    });
    entries.push(kernel_entry_tiered(
        &format!("htcsim_throughput_sim_{n_jobs}"),
        "seed_sim_loop",
        1,
        "f64",
        new_ns,
        base_ns,
    ));

    entries
}

/// Micro-batched serving throughput: 64 independent 4-row sample requests
/// answered by one coalesced `sample_batch` pass (what the serve loop's
/// batch scheduler issues; 256 total rows — a power of two, so padding adds
/// nothing) against the same 64 requests answered by sequential `sample`
/// calls (the unbatched serve loop). The paper-default TVAE decoder
/// (latent 16 → 128 → 128 → table width) is wide enough that the coalesced
/// pass crosses the packed-kernel shape split, while each 4-row unbatched
/// call stays on the direct row kernels — the kernel-tier jump that
/// micro-batching exists to buy under many small concurrent requests —
/// while staying byte-identical (pinned by the core and e2e test suites).
/// The entry has no `_tN` suffix, so `--check` gates it unconditionally.
fn serve_batching_bench(quick: bool) -> KernelBench {
    let table = epoch_table(256, 2024);
    let mut model = Tvae::new(TvaeConfig {
        epochs: 4,
        seed: 2024,
        ..TvaeConfig::default()
    });
    model.fit(&table).expect("tvae fits");
    let specs: Vec<SampleSpec> = (0..64)
        .map(|i| SampleSpec::new(4, 100 + i as u64))
        .collect();
    let (reps, inner) = if quick { (5, 2) } else { (7, 4) };
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(model.sample_batch(&specs).expect("batched sampling"));
    });
    let base_ns = time_ns(reps, inner, || {
        for spec in &specs {
            std::hint::black_box(
                model
                    .sample(spec.rows, spec.seed)
                    .expect("unbatched sampling"),
            );
        }
    });
    kernel_entry_tiered(
        "serve_batching_64x4",
        "unbatched_sample_calls",
        1,
        "f64",
        new_ns,
        base_ns,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("perf_report: {e}");
            eprintln!(
                "usage: perf_report [--quick] [--check] [--out PATH] \
                 [--threads N] [--dtype f32|f64]"
            );
            std::process::exit(2);
        }
    };
    // Must happen before the first parallel call: the rayon shim sizes its
    // pool from this variable once, lazily.
    if let Some(t) = opts.threads {
        std::env::set_var("RAYON_NUM_THREADS", t.to_string());
    }
    let quick = opts.quick;
    let check = opts.check;
    let out_path = opts.out.clone();

    eprintln!(
        "perf_report: timing kernels ({} mode, {} tier, {} pool executors)...",
        if quick { "quick" } else { "full" },
        nn::active_tier().name(),
        rayon::current_num_threads(),
    );
    let mut kernels = kernel_benches(quick);
    kernels.extend(ladder_benches(quick, opts.dtype));
    eprintln!("perf_report: timing htcsim calendar queue vs binary heap...");
    kernels.extend(htcsim_benches(quick));
    eprintln!("perf_report: timing micro-batched serving (64 x 4-row TVAE sample requests)...");
    kernels.push(serve_batching_bench(quick));
    for k in &kernels {
        eprintln!(
            "  {:<36} new {:>12.0} ns   {:<16} {:>12.0} ns   speedup {:.2}x  [t{} {}]",
            k.name, k.new_ns, k.baseline_kind, k.baseline_ns, k.speedup, k.threads, k.dtype
        );
    }

    let mut epochs = Vec::new();
    eprintln!("perf_report: timing TabDDPM fast-config epoch...");
    let tabddpm_epoch = tabddpm_epoch_bench(quick);
    epochs.push(("tabddpm_epoch", &tabddpm_epoch, 2.0));
    eprintln!("perf_report: timing CTABGAN+ fast-config epoch (fused vs unfused)...");
    let ctabgan_epoch = ctabgan_epoch_bench(quick);
    epochs.push(("ctabgan_epoch", &ctabgan_epoch, 1.0));
    eprintln!("perf_report: timing TVAE fast-config epoch...");
    let tvae_epoch = tvae_epoch_bench(quick);
    epochs.push(("tvae_epoch", &tvae_epoch, 1.0));
    for (name, epoch, target) in &epochs {
        eprintln!(
            "  {:<14} ({} rows)  new {:>9.1} ms   baseline {:>9.1} ms   speedup {:.2}x  [{}]",
            name,
            epoch.rows,
            epoch.new_epoch_ms,
            epoch.baseline_epoch_ms,
            epoch.speedup,
            epoch.baseline_kind
        );
        if epoch.speedup < *target {
            eprintln!(
                "warning: {name} speedup {:.2}x is below the {target}x target for this host/run",
                epoch.speedup
            );
        }
    }

    let report = Report {
        schema_version: 3,
        generated_by: "bench::perf_report".to_string(),
        quick,
        threads: rayon::current_num_threads(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        simd_tier: nn::active_tier().name().to_string(),
        kernels,
        tabddpm_epoch,
        ctabgan_epoch,
        tvae_epoch,
    };
    let json = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, json + "\n").expect("write report");

    match validate(&out_path) {
        Ok(()) => eprintln!("perf_report: wrote and validated {out_path}"),
        Err(e) => {
            eprintln!("perf_report: emitted {out_path} failed validation: {e}");
            std::process::exit(1);
        }
    }

    if check {
        let offending = kernel_regressions(&report.kernels, report.host_cores);
        if offending.is_empty() {
            eprintln!("perf_report: regression check passed (all gated kernels >= 1.0x)");
        } else {
            eprintln!(
                "perf_report: REGRESSION — kernels slower than their frozen baseline: {}",
                offending.join(", ")
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> Report {
        let epoch = |kind: &str| EpochBench {
            baseline_kind: kind.to_string(),
            rows: 512,
            epochs_timed: 2,
            new_epoch_ms: 10.0,
            baseline_epoch_ms: 25.0,
            speedup: 2.5,
        };
        Report {
            schema_version: 3,
            generated_by: "bench::perf_report".to_string(),
            quick: true,
            threads: 1,
            host_cores: 4,
            simd_tier: "avx2".to_string(),
            kernels: vec![kernel_entry_tiered(
                "matmul_64x64x64",
                "seed_reference",
                1,
                "f64",
                100.0,
                250.0,
            )],
            tabddpm_epoch: epoch("seed_epoch_loop"),
            ctabgan_epoch: epoch("unfused_discriminator_double_step"),
            tvae_epoch: epoch("seed_epoch_loop"),
        }
    }

    #[test]
    fn report_round_trips_through_the_typed_parser() {
        let report = toy_report();
        let text = serde_json::to_string_pretty(&report).unwrap();
        let parsed = validate_text(&text).expect("valid report parses");
        assert_eq!(parsed.simd_tier, "avx2");
        assert_eq!(parsed.kernels.len(), 1);
        assert_eq!(parsed.kernels[0].speedup, 2.5);
        assert_eq!(parsed.tabddpm_epoch.rows, 512);
        assert!(parsed.quick);
    }

    #[test]
    fn validate_text_rejects_malformed_documents() {
        // Not JSON at all, and structurally wrong JSON.
        assert!(validate_text("not json").is_err());
        assert!(validate_text("{}").is_err());
        assert!(validate_text("[1, 2]").is_err());

        let report = toy_report();
        // A mandatory field stripped from the document fails the typed
        // parse (this is what a schema drift looks like to CI).
        let text = serde_json::to_string(&report).unwrap();
        let stripped = text.replacen("\"simd_tier\":\"avx2\",", "", 1);
        assert_ne!(stripped, text, "field strip must change the document");
        assert!(validate_text(&stripped).is_err());
        // A field of the wrong type is named in the error.
        let retyped = text.replacen("\"simd_tier\":\"avx2\"", "\"simd_tier\":3", 1);
        let err = validate_text(&retyped).unwrap_err();
        assert!(err.contains("simd_tier"), "{err}");

        // Structural invariants past the parse: empty kernel list,
        // non-positive and non-finite timings.
        let mut bad = toy_report();
        bad.kernels.clear();
        assert!(validate_text(&serde_json::to_string(&bad).unwrap()).is_err());
        let mut bad = toy_report();
        bad.kernels[0].speedup = 0.0;
        assert!(validate_text(&serde_json::to_string(&bad).unwrap()).is_err());
        let mut bad = toy_report();
        // NaN serializes as null, so the typed parse itself rejects it.
        bad.tvae_epoch.speedup = f64::NAN;
        assert!(validate_text(&serde_json::to_string(&bad).unwrap()).is_err());
    }

    #[test]
    fn kernel_regressions_flags_only_sub_one_speedups() {
        let kernels = vec![
            kernel_entry_tiered("fast", "seed_reference", 1, "f64", 100.0, 250.0),
            kernel_entry_tiered("slow", "seed_reference", 1, "f64", 300.0, 250.0),
        ];
        let offending = kernel_regressions(&kernels, 4);
        assert_eq!(offending.len(), 1);
        assert!(offending[0].contains("slow"));
    }

    #[test]
    fn single_core_hosts_exempt_only_own_tier_parallel_entries() {
        let kernels = vec![
            // A parallel fan-out that cannot win on one core: exempt there,
            // gated on a multi-core host.
            kernel_entry_tiered(
                "matmul_packed_512x512x512_t4",
                "seq_own_dtype",
                4,
                "f64",
                300.0,
                250.0,
            ),
            // A slow f32 rung is never exempt — it is a sequential tier.
            kernel_entry_tiered(
                "matmul_packed_512x512x512_f32",
                "packed_f64",
                1,
                "f32",
                300.0,
                250.0,
            ),
        ];
        let on_one_core = kernel_regressions(&kernels, 1);
        assert_eq!(on_one_core.len(), 1, "{on_one_core:?}");
        assert!(on_one_core[0].contains("_f32"));
        let on_many = kernel_regressions(&kernels, 8);
        assert_eq!(on_many.len(), 2, "{on_many:?}");
    }

    #[test]
    fn name_conventions_pin_tier_suffixes_to_fields() {
        // The committed-artifact shapes all pass.
        for entry in [
            kernel_entry_tiered(
                "matmul_packed_512x512x512_t4",
                "seq_own_dtype",
                4,
                "f64",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "matmul_packed_512x512x512_t4_f32",
                "seq_own_dtype",
                4,
                "f32",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "matmul_packed_512x512x512_f32",
                "packed_f64",
                1,
                "f32",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "mlp_infer_512x128x256x256x64_f32",
                "mlp_infer_f64",
                1,
                "f32",
                1.0,
                2.0,
            ),
            kernel_entry_tiered("matmul_64x64x64", "seed_reference", 1, "f64", 1.0, 2.0),
            kernel_entry_tiered("matmul_packed_512x512x512", "pr2_tiled", 4, "f64", 1.0, 2.0),
        ] {
            check_name_conventions(&entry).unwrap_or_else(|e| panic!("{e}"));
        }
        // Mismatches are rejected: f32 name with f64 dtype, _tN against a
        // frozen baseline, thread-count disagreement, and a seq_own_dtype
        // entry hiding under an unsuffixed name.
        for bad in [
            kernel_entry_tiered(
                "matmul_packed_512x512x512_f32",
                "packed_f64",
                1,
                "f64",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "matmul_packed_512x512x512_t4",
                "pr2_tiled",
                4,
                "f64",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "matmul_packed_512x512x512_t4",
                "seq_own_dtype",
                2,
                "f64",
                1.0,
                2.0,
            ),
            kernel_entry_tiered(
                "matmul_packed_512x512x512",
                "seq_own_dtype",
                4,
                "f64",
                1.0,
                2.0,
            ),
        ] {
            assert!(check_name_conventions(&bad).is_err(), "{}", bad.name);
        }
    }

    #[test]
    fn thread_suffix_parses_ladder_names_only() {
        assert_eq!(name_thread_suffix("matmul_packed_512x512x512_t4"), Some(4));
        assert_eq!(
            name_thread_suffix("matmul_packed_4096x64x256_t16_f32"),
            Some(16)
        );
        assert_eq!(name_thread_suffix("matmul_packed_512x512x512"), None);
        assert_eq!(name_thread_suffix("matmul_packed_512x512x512_f32"), None);
        assert_eq!(name_thread_suffix("at_b_256x128_x_256x64"), None);
        assert_eq!(name_thread_suffix("transpose_512x384"), None);
    }

    #[test]
    fn parse_args_accepts_the_documented_flags() {
        let to_vec = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        let opts = parse_args(&to_vec(&[
            "--quick",
            "--check",
            "--out",
            "x.json",
            "--threads",
            "4",
            "--dtype",
            "f32",
        ]))
        .unwrap();
        assert!(opts.quick && opts.check);
        assert_eq!(opts.out, "x.json");
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.dtype, DtypeFilter::F32);
        // Defaults.
        let opts = parse_args(&[]).unwrap();
        assert!(!opts.quick && !opts.check);
        assert_eq!(opts.out, "BENCH_nn.json");
        assert_eq!(opts.threads, None);
        assert_eq!(opts.dtype, DtypeFilter::Both);
        assert!(opts.dtype.includes_f32() && opts.dtype.includes_f64());
    }

    #[test]
    fn parse_args_rejects_garbage_without_panicking() {
        let to_vec = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        for bad in [
            &["--threads"][..],
            &["--threads", "zero"][..],
            &["--threads", "0"][..],
            &["--threads", "-2"][..],
            &["--dtype"][..],
            &["--dtype", "f16"][..],
            &["--out"][..],
            &["--frobnicate"][..],
        ] {
            let err = parse_args(&to_vec(bad)).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
    }
}
