//! Track the `nn` training hot path against the frozen pre-PR kernels and
//! emit `BENCH_nn.json` so the performance trajectory is recorded across PRs.
//!
//! Two kinds of measurements:
//!
//! * **Kernel benches** — the blocked/fused kernels (`matmul`,
//!   `matmul_at_b`, `matmul_a_bt`, `matmul_bias`, blocked `transpose`, layer
//!   forward/backward) against [`nn::matrix::reference`], the seed-state
//!   scalar kernels preserved verbatim for exactly this purpose.
//! * **Epoch bench** — one TabDDPM fast-config training epoch through the
//!   current `TabDdpm::fit` hot path (fused forward, transpose-free
//!   backward, buffer reuse, no gradient copies) against a faithful
//!   re-implementation of the pre-PR epoch loop: reference kernels,
//!   transpose-materializing backward, per-step batch/bias/gradient
//!   allocations and `to_vec` gradient copies.
//!
//! After writing the report the binary reads it back through
//! `serde_json::from_str` and validates the schema, so CI's smoke invocation
//! proves both halves (writer and parser) work.
//!
//! Usage: `perf_report [--quick] [--out PATH]` (default `BENCH_nn.json`).

use std::collections::HashMap;
use std::time::Instant;

use nn::matrix::reference;
use nn::{
    standard_normal_matrix, Activation, CosineDecay, Layer, LinearLayer, LrSchedule, Matrix, Mlp,
    MlpConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use serde_json::ValueExt;
use surrogate::{TabDdpm, TabDdpmConfig, TableCodec, TabularGenerator};
use tabular::{Column, Table};

#[derive(Serialize)]
struct KernelBench {
    name: String,
    new_ns: f64,
    baseline_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EpochBench {
    rows: usize,
    epochs_timed: usize,
    new_epoch_ms: f64,
    baseline_epoch_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    schema_version: u32,
    generated_by: String,
    quick: bool,
    threads: usize,
    kernels: Vec<KernelBench>,
    tabddpm_epoch: EpochBench,
}

/// Best-of-`reps` wall time of `inner` consecutive runs of `f`, in
/// nanoseconds per run. One untimed warm-up precedes the samples.
fn time_ns(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / inner as f64);
    }
    best
}

fn kernel_entry(name: &str, new_ns: f64, baseline_ns: f64) -> KernelBench {
    KernelBench {
        name: name.to_string(),
        new_ns,
        baseline_ns,
        speedup: baseline_ns / new_ns.max(1e-9),
    }
}

fn kernel_benches(quick: bool) -> Vec<KernelBench> {
    let (reps, inner) = if quick { (3, 2) } else { (7, 8) };
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries = Vec::new();

    for &(m, k, n) in &[(64usize, 64usize, 64usize), (128, 128, 128), (97, 61, 113)] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let new_ns = time_ns(reps, inner, || {
            std::hint::black_box(a.matmul(&b));
        });
        let base_ns = time_ns(reps, inner, || {
            std::hint::black_box(reference::matmul(&a, &b));
        });
        entries.push(kernel_entry(
            &format!("matmul_{m}x{k}x{n}"),
            new_ns,
            base_ns,
        ));
    }

    let a = Matrix::randn(512, 384, 1.0, &mut rng);
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(a.transpose());
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::transpose(&a));
    });
    entries.push(kernel_entry("transpose_512x384", new_ns, base_ns));

    let input = Matrix::randn(256, 128, 1.0, &mut rng);
    let grad = Matrix::randn(256, 64, 1.0, &mut rng);
    let weights = Matrix::randn(128, 64, 1.0, &mut rng);
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(input.matmul_at_b(&grad));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&reference::transpose(&input), &grad));
    });
    entries.push(kernel_entry("at_b_256x128_x_256x64", new_ns, base_ns));

    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(grad.matmul_a_bt(&weights));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&grad, &reference::transpose(&weights)));
    });
    entries.push(kernel_entry("a_bt_256x64_x_128x64", new_ns, base_ns));

    let bias: Vec<f64> = (0..64).map(|i| i as f64 * 0.01).collect();
    let new_ns = time_ns(reps, inner, || {
        std::hint::black_box(input.matmul_bias(&weights, &bias));
    });
    let base_ns = time_ns(reps, inner, || {
        std::hint::black_box(reference::matmul(&input, &weights).add_row_vector(&bias));
    });
    entries.push(kernel_entry("fused_affine_256x128x64", new_ns, base_ns));

    let mut layer = LinearLayer::new(128, 64, Activation::Relu, &mut rng);
    let mut baseline_layer = BaselineLayer::from_layer(&layer);
    let x = Matrix::randn(256, 128, 1.0, &mut rng);
    let out = layer.forward(&x);
    let new_ns = time_ns(reps, inner, || {
        let y = layer.forward(&x);
        std::hint::black_box(layer.backward(&out));
        std::hint::black_box(y);
    });
    let base_ns = time_ns(reps, inner, || {
        let y = baseline_layer.forward(&x);
        std::hint::black_box(baseline_layer.backward(&out));
        std::hint::black_box(y);
    });
    entries.push(kernel_entry("layer_fwd_bwd_256x128x64", new_ns, base_ns));

    entries
}

// ---------------------------------------------------------------------------
// Faithful re-implementation of the pre-PR hot path: reference kernels,
// transpose-materializing backward, per-step clones, the seed-state Adam
// update loop (indexed, with per-element weight-decay branch) and the
// two-allocation MSE. These are frozen so future optimisation of the live
// `nn` crate cannot silently drag the baseline along with it.
// ---------------------------------------------------------------------------

/// The seed-state Adam (indexed inner loop, gradient slices copied by the
/// caller exactly as the pre-PR `Mlp::apply_gradients` did).
struct BaselineAdam {
    beta1: f64,
    beta2: f64,
    eps: f64,
    state: HashMap<usize, (Vec<f64>, Vec<f64>, u64)>,
}

impl BaselineAdam {
    fn new() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }

    fn update(&mut self, key: usize, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let (m, v, t) = self
            .state
            .entry(key)
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()], 0));
        *t += 1;
        let tf = *t as f64;
        let bias1 = 1.0 - self.beta1.powf(tf);
        let bias2 = 1.0 - self.beta2.powf(tf);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// The seed-state MSE: separate difference, reduction and gradient passes
/// with two allocations.
fn baseline_mse(prediction: &Matrix, target: &Matrix) -> (f64, Matrix) {
    let n = prediction.len() as f64;
    let diff = prediction.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

struct BaselineLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    cache_input: Option<Matrix>,
    cache_pre: Option<Matrix>,
}

impl BaselineLayer {
    /// Clone a (new-style) layer's parameters so both paths do identical math.
    fn from_layer(layer: &LinearLayer) -> Self {
        Self {
            weights: layer.weights.clone(),
            bias: layer.bias.clone(),
            activation: layer.activation,
            grad_weights: Matrix::zeros(layer.in_dim(), layer.out_dim()),
            grad_bias: vec![0.0; layer.out_dim()],
            cache_input: None,
            cache_pre: None,
        }
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        let act = self.activation;
        let pre = reference::matmul(input, &self.weights).add_row_vector(&self.bias);
        let out = pre.map(|v| act.forward(v));
        self.cache_input = Some(input.clone());
        self.cache_pre = Some(pre);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cache_input.as_ref().expect("forward first");
        let pre = self.cache_pre.as_ref().expect("forward first");
        let act = self.activation;
        let grad_pre = grad_output.zip(pre, |g, p| g * act.derivative(p));
        self.grad_weights = reference::matmul(&reference::transpose(input), &grad_pre);
        self.grad_bias = grad_pre.sum_rows();
        reference::matmul(&grad_pre, &reference::transpose(&self.weights))
    }
}

struct BaselineMlp {
    layers: Vec<BaselineLayer>,
}

impl BaselineMlp {
    fn from_mlp(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers().iter().map(BaselineLayer::from_layer).collect(),
        }
    }

    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn grad_norm(&self) -> f64 {
        let mut sq = 0.0;
        for layer in &self.layers {
            sq += layer.grad_weights.data().iter().map(|g| g * g).sum::<f64>();
            sq += layer.grad_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq.sqrt()
    }

    fn clip_gradients(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in &mut self.layers {
                layer.grad_weights = layer.grad_weights.scale(scale);
                for g in &mut layer.grad_bias {
                    *g *= scale;
                }
            }
        }
    }

    fn apply_gradients(&mut self, optimizer: &mut BaselineAdam, param_group: usize, lr: f64) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let wkey = param_group * 1000 + i * 2;
            let bkey = wkey + 1;
            let grads = layer.grad_weights.data().to_vec();
            optimizer.update(wkey, layer.weights.data_mut(), &grads, lr);
            let bias_grads = layer.grad_bias.clone();
            optimizer.update(bkey, &mut layer.bias, &bias_grads, lr);
        }
    }
}

/// The training table the epoch bench fits: a PanDA-like mix of numerical
/// and categorical columns.
fn epoch_table(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = ["BNL", "CERN", "SLAC", "IN2P3", "KIT", "TRIUMF"];
    let queues = ["analysis", "production", "test", "merge"];
    let mut cpu = Vec::with_capacity(n);
    let mut ram = Vec::with_capacity(n);
    let mut walltime = Vec::with_capacity(n);
    let mut disk = Vec::with_capacity(n);
    let mut site = Vec::with_capacity(n);
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        cpu.push(rng.gen_range(1.0..64.0));
        ram.push(rng.gen_range(0.5..16.0));
        walltime.push(rng.gen_range(60.0..86_400.0));
        disk.push(rng.gen_range(0.1..500.0));
        site.push(sites[rng.gen_range(0..sites.len())]);
        queue.push(queues[rng.gen_range(0..queues.len())]);
    }
    let mut t = Table::new();
    t.push_column("cpu", Column::Numerical(cpu)).unwrap();
    t.push_column("ram", Column::Numerical(ram)).unwrap();
    t.push_column("walltime", Column::Numerical(walltime))
        .unwrap();
    t.push_column("disk", Column::Numerical(disk)).unwrap();
    t.push_column("site", Column::from_labels(&site)).unwrap();
    t.push_column("queue", Column::from_labels(&queue)).unwrap();
    t
}

/// One pre-PR-style TabDDPM training epoch: the exact inner loop the seed
/// shipped (fresh batch/noise/noisy allocations every step, clone-heavy
/// MLP), driven by the same schedule, batch size and RNG pattern as
/// `TabDdpm::fit`.
#[allow(clippy::too_many_arguments)]
fn baseline_epoch(
    denoiser: &mut BaselineMlp,
    adam: &mut BaselineAdam,
    data: &Matrix,
    alpha_bar: &[f64],
    timesteps: usize,
    batch: usize,
    schedule: &CosineDecay,
    step: &mut usize,
    rng: &mut StdRng,
) -> f64 {
    let n = data.rows();
    let width = data.cols();
    let steps_per_epoch = n.div_ceil(batch);
    let mut epoch_loss = 0.0;
    for _ in 0..steps_per_epoch {
        let lr = schedule.lr_at(*step);
        *step += 1;

        let idx: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..n)).collect();
        let x0 = data.take_rows(&idx);

        let ts: Vec<usize> = (0..batch).map(|_| rng.gen_range(0..timesteps)).collect();
        let t_frac: Vec<f64> = ts
            .iter()
            .map(|&t| (t + 1) as f64 / timesteps as f64)
            .collect();
        let noise = standard_normal_matrix(batch, width, rng);

        let mut x_noisy = Matrix::zeros(batch, width);
        for (r, &t) in ts.iter().enumerate() {
            let ab = alpha_bar[t];
            let (sa, sb) = (ab.sqrt(), (1.0 - ab).sqrt());
            for c in 0..width {
                x_noisy.set(r, c, sa * x0.get(r, c) + sb * noise.get(r, c));
            }
        }

        let mut t_cols = Matrix::zeros(batch, 2);
        for (r, &t) in t_frac.iter().enumerate() {
            t_cols.set(r, 0, t);
            t_cols.set(r, 1, (t * std::f64::consts::PI).sin());
        }
        let input = x_noisy.hconcat(&t_cols);

        let predicted = denoiser.forward(&input);
        let (loss, grad) = baseline_mse(&predicted, &noise);
        epoch_loss += loss;
        denoiser.backward(&grad);
        denoiser.clip_gradients(5.0);
        denoiser.apply_gradients(adam, 0, lr);
    }
    epoch_loss / steps_per_epoch as f64
}

/// Cosine ᾱ schedule matching `TabDdpm` (re-derived here because the model
/// keeps it private; validated against `TabDdpm::alpha_bar()` below).
fn cosine_alpha_bar(timesteps: usize) -> Vec<f64> {
    let s = 0.008;
    let f = |t: f64| {
        ((t / timesteps as f64 + s) / (1.0 + s) * std::f64::consts::FRAC_PI_2)
            .cos()
            .powi(2)
    };
    let f0 = f(0.0);
    (1..=timesteps)
        .map(|t| (f(t as f64) / f0).clamp(1e-5, 0.9999))
        .collect()
}

fn epoch_bench(quick: bool) -> EpochBench {
    let rows = if quick { 512 } else { 2048 };
    let (e1, e2, reps) = if quick { (1, 3, 1) } else { (2, 10, 2) };
    let epochs = e2 - e1;
    let cfg = TabDdpmConfig {
        epochs: e2,
        ..TabDdpmConfig::fast()
    };
    let train = epoch_table(rows, 99);

    // --- Current hot path: the real model through `TabDdpm::fit`. Timing
    // two fits with different epoch counts and differencing cancels the
    // fixed per-fit costs (codec fit/encode, weight init), leaving pure
    // per-epoch training time.
    let fit_secs = |epochs: usize, reps: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut model = TabDdpm::new(TabDdpmConfig {
                epochs,
                ..cfg.clone()
            });
            let start = Instant::now();
            model.fit(&train).expect("TabDDPM fit");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    fit_secs(1, 1); // warm-up (pool spin-up, page faults)
                    // A noisy host can invert the two measurements (the short fit timing
                    // slower than the long one); retry with more repetitions, and if the
                    // inversion persists fall back to whole-fit-per-epoch time — an upper
                    // bound that includes the codec overhead — rather than record a
                    // nonsense differenced value in the tracked artifact.
    let mut new_epoch_ms = f64::NAN;
    for attempt in 0..3 {
        let r = reps + attempt;
        let t1 = fit_secs(e1, r);
        let t2 = fit_secs(e2, r);
        if t2 > t1 {
            new_epoch_ms = ((t2 - t1) * 1e3) / (e2 - e1) as f64;
            break;
        }
        eprintln!("perf_report: noisy epoch timing (t1 {t1:.4}s >= t2 {t2:.4}s), retrying");
    }
    if !new_epoch_ms.is_finite() {
        eprintln!("perf_report: differencing failed; using whole-fit upper bound");
        new_epoch_ms = fit_secs(e2, reps) * 1e3 / e2 as f64;
    }
    // Unfitted model: `alpha_bar` is derived in the constructor.
    let model = TabDdpm::new(cfg.clone());

    // --- Pre-PR hot path: same math, seed-state kernels and allocations. ---
    let codec = TableCodec::fit(&train).expect("codec fit");
    let data = codec.encode(&train).expect("codec encode");
    let width = codec.encoded_width();
    let alpha_bar = cosine_alpha_bar(cfg.timesteps);
    assert_eq!(
        alpha_bar.as_slice(),
        model.alpha_bar(),
        "baseline schedule drifted from the model's"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let template = Mlp::new(
        &MlpConfig::relu(width + 2, cfg.hidden.clone(), width),
        &mut rng,
    );
    let mut denoiser = BaselineMlp::from_mlp(&template);
    let mut adam = BaselineAdam::new();
    let n = data.rows();
    let batch = cfg.batch_size.min(n).max(1);
    let steps_per_epoch = n.div_ceil(batch);
    let schedule = CosineDecay {
        base_lr: cfg.learning_rate,
        min_lr: cfg.learning_rate * 0.01,
        total_steps: cfg.epochs * steps_per_epoch,
        warmup_steps: 0,
    };
    let mut step = 0usize;
    let start = Instant::now();
    let mut last_loss = f64::NAN;
    for _ in 0..epochs {
        last_loss = baseline_epoch(
            &mut denoiser,
            &mut adam,
            &data,
            &alpha_bar,
            cfg.timesteps,
            batch,
            &schedule,
            &mut step,
            &mut rng,
        );
    }
    let baseline_epoch_ms = start.elapsed().as_secs_f64() * 1e3 / epochs as f64;
    assert!(
        last_loss.is_finite(),
        "baseline training diverged; comparison would be meaningless"
    );

    EpochBench {
        rows,
        epochs_timed: epochs,
        new_epoch_ms,
        baseline_epoch_ms,
        speedup: baseline_epoch_ms / new_epoch_ms.max(1e-9),
    }
}

/// Re-read the emitted report and validate the schema, proving the JSON both
/// renders and parses (the CI smoke test relies on this).
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let kernels = doc
        .get("kernels")
        .and_then(|k| k.as_array())
        .ok_or("missing 'kernels' array")?;
    if kernels.is_empty() {
        return Err("'kernels' array is empty".to_string());
    }
    for entry in kernels {
        for field in ["new_ns", "baseline_ns", "speedup"] {
            let v = entry
                .get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("kernel entry missing numeric '{field}'"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("kernel field '{field}' is not a positive number"));
            }
        }
    }
    let speedup = doc
        .get("tabddpm_epoch")
        .and_then(|e| e.get("speedup"))
        .and_then(|v| v.as_f64())
        .ok_or("missing tabddpm_epoch.speedup")?;
    if !speedup.is_finite() || speedup <= 0.0 {
        return Err("tabddpm_epoch.speedup is not a positive number".to_string());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_nn.json".to_string());

    eprintln!(
        "perf_report: timing kernels ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let kernels = kernel_benches(quick);
    for k in &kernels {
        eprintln!(
            "  {:<28} new {:>12.0} ns   baseline {:>12.0} ns   speedup {:.2}x",
            k.name, k.new_ns, k.baseline_ns, k.speedup
        );
    }

    eprintln!("perf_report: timing TabDDPM fast-config epoch...");
    let epoch = epoch_bench(quick);
    eprintln!(
        "  tabddpm_epoch ({} rows)       new {:>9.1} ms   baseline {:>9.1} ms   speedup {:.2}x",
        epoch.rows, epoch.new_epoch_ms, epoch.baseline_epoch_ms, epoch.speedup
    );
    if epoch.speedup < 2.0 {
        eprintln!(
            "warning: epoch speedup {:.2}x is below the 2x target for this host/run",
            epoch.speedup
        );
    }

    let report = Report {
        schema_version: 1,
        generated_by: "bench::perf_report".to_string(),
        quick,
        threads: rayon::current_num_threads(),
        kernels,
        tabddpm_epoch: epoch,
    };
    let json = serde_json::to_string_pretty(&report).expect("render report");
    std::fs::write(&out_path, json + "\n").expect("write report");

    match validate(&out_path) {
        Ok(()) => eprintln!("perf_report: wrote and validated {out_path}"),
        Err(e) => {
            eprintln!("perf_report: emitted {out_path} failed validation: {e}");
            std::process::exit(1);
        }
    }
}
