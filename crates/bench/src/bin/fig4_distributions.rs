//! Experiments E2/E3 — reproduce **Fig. 4**: per-feature distributional
//! comparisons between ground truth and each surrogate model.
//!
//! (a) histograms of the four numerical features, (b) normalised counts of
//! the top categorical entries.
//!
//! ```text
//! cargo run -p bench --release --bin fig4_distributions -- --rows 30000
//! ```

use std::collections::BTreeMap;

use bench::{fit_all, maybe_write_json, prepare_data, ExperimentOptions};
use metrics::{column_jsd, wasserstein_1d_normalized};
use serde::Serialize;
use tabular::stats::{histogram_with_range, top_k_frequencies};

const NUMERICAL: [&str; 4] = [
    "workload",
    "creationtime",
    "ninputdatafiles",
    "inputfilebytes",
];
const CATEGORICAL: [&str; 4] = ["jobstatus", "computingsite", "project", "datatype"];
const BINS: usize = 24;
const TOP_K: usize = 5;

#[derive(Serialize)]
struct Fig4Artifact {
    /// feature -> model -> normalised histogram (ground truth under "GT").
    numerical: BTreeMap<String, BTreeMap<String, Vec<f64>>>,
    /// feature -> model -> top-k (label, frequency) pairs.
    categorical: BTreeMap<String, BTreeMap<String, Vec<(String, f64)>>>,
}

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    let data = prepare_data(&options);
    let fits = fit_all(&data.train, options.budget, options.seed);
    if fits.report_failures() == fits.runs.len() {
        eprintln!("error: every surrogate model failed — nothing to compare");
        std::process::exit(1);
    }
    let models: Vec<(&str, &tabular::Table)> = fits.successes().collect();

    let mut artifact = Fig4Artifact {
        numerical: BTreeMap::new(),
        categorical: BTreeMap::new(),
    };

    println!("== Fig. 4(a): numerical feature distributions ==");
    for feature in NUMERICAL {
        let gt = data.train.numerical(feature).expect("numerical feature");
        // Log-scale the two heavy-tailed features so the histogram is readable.
        let log_scale = feature == "workload" || feature == "inputfilebytes";
        let gt_values: Vec<f64> = if log_scale {
            gt.iter().map(|v| v.max(1e-9).ln()).collect()
        } else {
            gt.to_vec()
        };
        let min = gt_values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = gt_values.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1e-9;

        let mut per_model = BTreeMap::new();
        per_model.insert(
            "GT".to_string(),
            histogram_with_range(&gt_values, BINS, min, max).pmf(),
        );
        println!(
            "\n[{feature}{}]",
            if log_scale { ", log scale" } else { "" }
        );
        println!("  {:<10} {}", "GT", sparkline(&per_model["GT"]));
        for (name, synthetic) in &models {
            let values = synthetic.numerical(feature).expect("numerical feature");
            let values: Vec<f64> = if log_scale {
                values.iter().map(|v| v.max(1e-9).ln()).collect()
            } else {
                values.to_vec()
            };
            let pmf = histogram_with_range(&values, BINS, min, max).pmf();
            let wd = wasserstein_1d_normalized(gt, synthetic.numerical(feature).unwrap())
                .expect("non-degenerate samples");
            println!("  {:<10} {}  (WD = {:.3})", name, sparkline(&pmf), wd);
            per_model.insert((*name).to_string(), pmf);
        }
        artifact.numerical.insert(feature.to_string(), per_model);
    }

    println!("\n== Fig. 4(b): categorical feature distributions (top {TOP_K}) ==");
    for feature in CATEGORICAL {
        let gt_top =
            top_k_frequencies(data.train.column(feature).expect("column"), TOP_K).expect("counts");
        let mut per_model = BTreeMap::new();
        println!("\n[{feature}]");
        print!("  {:<10}", "GT");
        for (label, freq) in &gt_top {
            print!("  {label}={freq:.3}");
        }
        println!();
        per_model.insert("GT".to_string(), gt_top.clone());
        for (name, synthetic) in &models {
            let jsd = column_jsd(&data.train, synthetic, feature);
            let top = top_k_frequencies(synthetic.column(feature).expect("column"), TOP_K)
                .unwrap_or_default();
            print!("  {:<10}", name);
            for (label, freq) in &top {
                print!("  {label}={freq:.3}");
            }
            println!("  (JSD = {jsd:.3})");
            per_model.insert((*name).to_string(), top);
        }
        artifact.categorical.insert(feature.to_string(), per_model);
    }

    maybe_write_json(&options, &artifact);
}

/// Render a probability mass function as a unicode sparkline.
fn sparkline(pmf: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = pmf.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    pmf.iter()
        .map(|&p| {
            let idx = ((p / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}
