//! Experiment E5 — reproduce **Table I**: WD, JSD, diff-CORR, DCR and
//! diff-MLEF for TVAE, CTABGAN+, SMOTE and TabDDPM.
//!
//! ```text
//! cargo run -p bench --release --bin table1 -- --rows 30000 --budget standard
//! ```

use bench::{fit_all, maybe_write_json, prepare_data, ExperimentOptions};
use metrics::{evaluate_surrogate, EvaluationConfig, SurrogateReport};

fn main() {
    let options = ExperimentOptions::from_args(std::env::args().skip(1));
    println!("== Table I: performance comparisons on surrogate models ==");
    println!(
        "simulated gross records: {}, window: {} days, budget: {:?}",
        options.gross_records, options.days, options.budget
    );

    let data = prepare_data(&options);
    println!("\nfiltering funnel (Fig. 3b):");
    for line in data.funnel.render() {
        println!("  {line}");
    }
    println!(
        "train rows: {}, test rows: {}",
        data.train.n_rows(),
        data.test.n_rows()
    );

    let evaluation = EvaluationConfig::paper();
    let mut reports: Vec<SurrogateReport> = Vec::new();

    let fits = fit_all(&data.train, options.budget, options.seed);
    if fits.report_failures() == fits.runs.len() {
        eprintln!("error: every surrogate model failed — nothing to evaluate");
        std::process::exit(1);
    }

    println!("\n{}", SurrogateReport::table_header());
    for (name, synthetic) in fits.successes() {
        let report = evaluate_surrogate(name, &data.train, &data.test, synthetic, &evaluation)
            .expect("synthetic table is evaluable");
        println!("{}", report.table_row());
        reports.push(report);
    }

    println!("\npaper reference values (Table I):");
    println!("  TVAE      WD 0.961  JSD 0.806  diff-CORR 0.653  DCR 0.143  diff-MLEF  5.875");
    println!("  CTABGAN+  WD 1.000  JSD 0.820  diff-CORR 0.658  DCR 0.105  diff-MLEF 10.464");
    println!("  SMOTE     WD 0.871  JSD 0.799  diff-CORR 0.011  DCR 0.001  diff-MLEF  0.058");
    println!("  TabDDPM   WD 0.874  JSD 0.799  diff-CORR 0.036  DCR 0.025  diff-MLEF  0.826");

    maybe_write_json(&options, &reports);
}
