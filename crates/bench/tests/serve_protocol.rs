//! End-to-end protocol tests for `bench --bin serve`: each test spawns the
//! real binary against a real checkpoint directory and drives the JSON-line
//! protocol over stdin/stdout — the process-boundary coverage the in-binary
//! unit tests cannot give.
//!
//! The batching tests pin the serving loop's core guarantee: a micro-batched
//! serve (requests coalesced into one generator pass via `batch:hold`)
//! answers byte-identical digests to an unbatched serve (`batch:split`).

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use serde_json::{Value, ValueExt};
use surrogate::checkpoint::CheckpointPayload;
use surrogate::{
    Checkpoint, SmoteConfig, SmoteSampler, TabularGenerator, TrainingBudget, Tvae, TvaeConfig,
};
use tabular::{Column, Table};

fn toy_table() -> Table {
    let values: Vec<f64> = (0..48)
        .map(|i| (i as f64 * 0.37).sin() * 50.0 + 50.0)
        .collect();
    let labels: Vec<&str> = (0..48)
        .map(|i| if i % 3 == 0 { "BNL" } else { "CERN" })
        .collect();
    let mut table = Table::new();
    table
        .push_column("workload", Column::Numerical(values))
        .unwrap();
    table
        .push_column("site", Column::from_labels(&labels))
        .unwrap();
    table
}

/// Create a fresh checkpoint directory holding one fitted SMOTE and one
/// fitted TVAE checkpoint (both cheap to fit at smoke scale).
fn checkpoint_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("panda_serve_protocol_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let table = toy_table();

    let mut smote = SmoteSampler::new(SmoteConfig::default());
    smote.fit(&table).unwrap();
    Checkpoint::new(
        "small",
        2024,
        TrainingBudget::Smoke,
        CheckpointPayload::Smote(smote),
    )
    .save_to_dir(&dir)
    .unwrap();

    let mut tvae = Tvae::new(TvaeConfig {
        seed: 2024,
        ..TvaeConfig::fast()
    });
    tvae.fit(&table).unwrap();
    Checkpoint::new(
        "small",
        2024,
        TrainingBudget::Smoke,
        CheckpointPayload::Tvae(tvae),
    )
    .save_to_dir(&dir)
    .unwrap();
    dir
}

/// Spawn `serve`, write every request line, close stdin, and return the
/// response lines parsed as JSON (stdout order).
fn run_serve(dir: &Path, extra_args: &[&str], requests: &[&str]) -> Vec<Value> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--checkpoints")
        .arg(dir)
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    {
        let stdin = child.stdin.as_mut().unwrap();
        for request in requests {
            writeln!(stdin, "{request}").unwrap();
        }
    }
    drop(child.stdin.take());
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let responses: Vec<Value> = stdout
        .lines()
        .map(|line| serde_json::from_str(&line.unwrap()).expect("response line is JSON"))
        .collect();
    let status = child.wait().unwrap();
    assert!(status.success(), "serve exited with {status}");
    responses
}

fn id(response: &Value) -> Option<u64> {
    response
        .get("id")
        .and_then(|v| v.as_f64())
        .map(|n| n as u64)
}

fn status(response: &Value) -> &str {
    response
        .get("status")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("response has no status: {response:?}"))
}

fn detail(response: &Value) -> &str {
    response
        .get("detail")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("response has no detail: {response:?}"))
}

fn digest(response: &Value) -> &str {
    response
        .get("digest")
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| panic!("response has no digest: {response:?}"))
}

fn rows(response: &Value) -> Option<u64> {
    response
        .get("rows")
        .and_then(|v| v.as_f64())
        .map(|n| n as u64)
}

/// Responses sorted by correlation id, so overload sheds (emitted by the
/// reader thread) and worker responses can be compared positionally. An
/// absent id (unparseable request) sorts first.
fn by_id(mut responses: Vec<Value>) -> Vec<Value> {
    responses.sort_by_key(id);
    responses
}

#[test]
fn health_list_and_sample_over_the_wire() {
    let dir = checkpoint_dir("basic");
    let responses = run_serve(
        &dir,
        &[],
        &[
            r#"{"id":1,"op":"health"}"#,
            r#"{"id":2,"op":"list"}"#,
            r#"{"id":3,"op":"sample","model":"smote","rows":6,"sample_seed":9}"#,
            "this is not json",
            r#"{"id":5,"op":"sample","model":"mystery"}"#,
        ],
    );
    assert_eq!(responses.len(), 5);
    let responses = by_id(responses);
    // The unparseable line answers with a null id, which sorts first.
    assert_eq!(status(&responses[0]), "bad_request");
    assert_eq!(responses[0].get("id"), Some(&Value::Null));

    assert_eq!(status(&responses[1]), "ok");
    assert_eq!(
        responses[1]
            .get("models")
            .and_then(|v| v.as_array())
            .map(<[Value]>::len),
        Some(2)
    );
    assert_eq!(
        responses[1].get("quarantined").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    assert_eq!(status(&responses[2]), "ok");
    assert_eq!(status(&responses[3]), "ok");
    assert_eq!(
        responses[3].get("key").and_then(|v| v.as_str()),
        Some("s2024-smoke-small-smote")
    );
    assert_eq!(rows(&responses[3]), Some(6));
    assert_eq!(status(&responses[4]), "bad_request");
}

#[test]
fn batched_serving_is_byte_identical_to_unbatched() {
    let dir = checkpoint_dir("batched");
    // Two TVAE requests (coalesced into one generator pass), one SMOTE
    // request, and a health check — all forced into a single batch.
    let requests = [
        r#"{"id":1,"op":"sample","model":"tvae","rows":8,"sample_seed":7}"#,
        r#"{"id":2,"op":"sample","model":"smote","rows":5,"sample_seed":3}"#,
        r#"{"id":3,"op":"sample","model":"tvae","rows":3,"sample_seed":11}"#,
        r#"{"id":4,"op":"health"}"#,
    ];
    let batched = run_serve(
        &dir,
        &["--inject", "batch:hold:4", "--batch-window-ms", "50"],
        &requests,
    );
    let unbatched = by_id(run_serve(&dir, &["--inject", "batch:split"], &requests));

    // One batch, answered in arrival order.
    let ids: Vec<Option<u64>> = batched.iter().map(id).collect();
    assert_eq!(ids, vec![Some(1), Some(2), Some(3), Some(4)]);
    for (b, u) in batched.iter().zip(&unbatched) {
        assert_eq!(status(b), "ok", "batched: {b:?}");
        assert_eq!(status(u), "ok", "unbatched: {u:?}");
    }
    for i in 0..3 {
        assert_eq!(
            digest(&batched[i]),
            digest(&unbatched[i]),
            "request {} diverged between batched and unbatched serving",
            i + 1
        );
    }
    assert_eq!(rows(&batched[0]), Some(8));
    assert_eq!(rows(&batched[2]), Some(3));
}

#[test]
fn overload_sheds_and_the_rest_are_served() {
    let dir = checkpoint_dir("overload");
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .arg("--checkpoints")
        .arg(&dir)
        .args(["--inject", "queue:hold", "--queue-depth", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    {
        let stdin = child.stdin.as_mut().unwrap();
        // The held worker dequeues the first request (the pause lets it),
        // the second fills the depth-1 queue, the third is shed.
        writeln!(stdin, r#"{{"id":1,"op":"health"}}"#).unwrap();
        stdin.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
        writeln!(stdin, r#"{{"id":2,"op":"health"}}"#).unwrap();
        writeln!(stdin, r#"{{"id":3,"op":"health"}}"#).unwrap();
    }
    drop(child.stdin.take());
    let stdout = BufReader::new(child.stdout.take().unwrap());
    let responses: Vec<Value> = stdout
        .lines()
        .map(|line| serde_json::from_str(&line.unwrap()).unwrap())
        .collect();
    assert!(child.wait().unwrap().success());

    let responses = by_id(responses);
    assert_eq!(responses.len(), 3);
    assert_eq!(status(&responses[0]), "ok");
    assert_eq!(status(&responses[1]), "ok");
    assert_eq!(status(&responses[2]), "overload");
    assert!(detail(&responses[2]).contains("queue full"));
}

#[test]
fn deadlines_are_enforced_after_handling_too() {
    let dir = checkpoint_dir("deadline");
    // Both requests arrive together (batch:hold:2) and each burns a real
    // 200ms injected delay against a 300ms deadline. The first passes its
    // pre-handle check but the batch takes ~400ms, so the post-handle
    // re-check fails it; the second is already late before handling.
    let responses = by_id(run_serve(
        &dir,
        &[
            "--deadline-ms",
            "300",
            "--inject",
            "request:delay:200ms,batch:hold:2",
        ],
        &[r#"{"id":1,"op":"health"}"#, r#"{"id":2,"op":"health"}"#],
    ));
    assert_eq!(status(&responses[0]), "deadline");
    assert!(
        detail(&responses[0]).contains("after handling"),
        "first request must fail the post-handle re-check: {:?}",
        responses[0]
    );
    assert_eq!(status(&responses[1]), "deadline");
}

#[test]
fn row_caps_answer_typed_rejections() {
    let dir = checkpoint_dir("rowcap");
    let responses = by_id(run_serve(
        &dir,
        &["--max-rows", "100"],
        &[
            r#"{"id":1,"op":"sample","model":"smote","rows":100,"sample_seed":1}"#,
            r#"{"id":2,"op":"sample","model":"smote","rows":101,"sample_seed":1}"#,
        ],
    ));
    assert_eq!(status(&responses[0]), "ok");
    assert_eq!(rows(&responses[0]), Some(100));
    assert_eq!(status(&responses[1]), "bad_request");
    let rejection = detail(&responses[1]);
    assert!(rejection.contains("--max-rows"), "{rejection}");
    assert!(rejection.contains("100"), "{rejection}");
}

#[test]
fn flag_shaped_values_are_usage_errors() {
    // `--checkpoints --queue-depth 1` must not be read as a directory
    // named "--queue-depth": the process exits 2 naming the bad flag pair.
    let output = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--checkpoints", "--queue-depth", "1"])
        .output()
        .expect("serve spawns");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--checkpoints"), "{stderr}");
    assert!(stderr.contains("--queue-depth"), "{stderr}");
}
