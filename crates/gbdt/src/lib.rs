//! Histogram-based gradient-boosted regression trees.
//!
//! The paper's machine-learning-efficacy (MLEF) metric trains a CatBoost
//! regressor on real or synthetic job records to predict the (log) workload
//! and scores it on a held-out test set. CatBoost is proprietary to the
//! Python/C++ ecosystem, so this crate provides the same model family —
//! gradient boosting over regression trees with native categorical handling
//! via ordered target statistics — which is what the probe actually needs:
//! a strong, deterministic tabular regressor whose test error ranks training
//! sets by how much signal they carry about the target.
//!
//! * [`dataset`] — feature matrices, per-feature binning and ordered target
//!   encoding of categorical columns,
//! * [`tree`] — a single histogram-based regression tree,
//! * [`booster`] — the boosting loop (squared loss, shrinkage, optional
//!   row subsampling),
//! * [`eval`] — RMSE / MSE / MAE helpers.

pub mod booster;
pub mod dataset;
pub mod eval;
pub mod tree;

pub use booster::{Gbdt, GbdtConfig};
pub use dataset::{BinMapper, FeatureMatrix, TargetEncoder};
pub use eval::{mae, mse, rmse};
pub use tree::{RegressionTree, TreeConfig};
