//! The gradient-boosting loop (squared loss).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{BinMapper, FeatureMatrix};
use crate::tree::{RegressionTree, TreeConfig};

/// Hyper-parameters of the boosted ensemble.
///
/// The defaults mirror the paper's MLEF probe settings: 200 iterations,
/// depth 10 and learning rate 1.0 on a root-mean-square-error objective.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting iterations (trees).
    pub n_iterations: usize,
    /// Learning rate (shrinkage) applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of rows sampled (without replacement) per iteration.
    pub subsample: f64,
    /// Maximum histogram bins per feature.
    pub max_bins: usize,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_iterations: 200,
            learning_rate: 1.0,
            max_depth: 10,
            min_samples_leaf: 16,
            subsample: 1.0,
            max_bins: 64,
            seed: 0,
        }
    }
}

impl GbdtConfig {
    /// The exact probe configuration from the paper (§V-A-b).
    pub fn paper_mlef() -> Self {
        Self::default()
    }

    /// A small configuration for tests and quick experiments.
    pub fn fast() -> Self {
        Self {
            n_iterations: 40,
            learning_rate: 0.3,
            max_depth: 5,
            min_samples_leaf: 8,
            subsample: 0.9,
            max_bins: 32,
            seed: 0,
        }
    }
}

/// A fitted gradient-boosted regression ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    config: GbdtConfig,
    base_prediction: f64,
    trees: Vec<RegressionTree>,
}

impl Gbdt {
    /// Fit the ensemble on `(data, targets)`.
    pub fn fit(data: &FeatureMatrix, targets: &[f64], config: GbdtConfig) -> Self {
        assert_eq!(data.n_rows(), targets.len(), "data/target length mismatch");
        assert!(data.n_rows() > 0, "cannot fit on an empty dataset");
        let mapper = BinMapper::fit(data, config.max_bins);
        let base_prediction = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut predictions = vec![base_prediction; targets.len()];
        let mut trees = Vec::with_capacity(config.n_iterations);
        let tree_config = TreeConfig {
            max_depth: config.max_depth,
            min_samples_leaf: config.min_samples_leaf,
            min_gain: 1e-9,
            max_bins: config.max_bins,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all_indices: Vec<usize> = (0..data.n_rows()).collect();

        for _ in 0..config.n_iterations {
            // Squared loss: negative gradient = residual.
            let residuals: Vec<f64> = targets
                .iter()
                .zip(&predictions)
                .map(|(t, p)| t - p)
                .collect();

            let indices: Vec<usize> = if config.subsample < 1.0 {
                let k = ((data.n_rows() as f64) * config.subsample).round().max(1.0) as usize;
                let mut shuffled = all_indices.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(k);
                shuffled
            } else {
                all_indices.clone()
            };

            let tree = RegressionTree::fit(data, &residuals, &indices, &tree_config, &mapper);
            for (r, pred) in predictions.iter_mut().enumerate() {
                *pred += config.learning_rate * tree.predict_row(data.row(r));
            }
            trees.push(tree);
        }

        Self {
            config,
            base_prediction,
            trees,
        }
    }

    /// Predict every row of a feature matrix.
    pub fn predict(&self, data: &FeatureMatrix) -> Vec<f64> {
        let mut out = vec![self.base_prediction; data.n_rows()];
        for tree in &self.trees {
            for (r, pred) in out.iter_mut().enumerate() {
                *pred += self.config.learning_rate * tree.predict_row(data.row(r));
            }
        }
        out
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_prediction
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict_row(row))
                .sum::<f64>()
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Configuration used to fit the model.
    pub fn config(&self) -> GbdtConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::rmse;

    fn friedman_like(n: usize) -> (FeatureMatrix, Vec<f64>) {
        // Smooth nonlinear target over 4 features (deterministic pseudo-noise).
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                vec![
                    x,
                    (x * 7.3).fract(),
                    ((i * 13) % 17) as f64 / 17.0,
                    ((i * 29) % 23) as f64 / 23.0,
                ]
            })
            .collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| {
                10.0 * (std::f64::consts::PI * r[0] * r[1]).sin()
                    + 20.0 * (r[2] - 0.5).powi(2)
                    + 5.0 * r[3]
            })
            .collect();
        (FeatureMatrix::from_rows(&rows), targets)
    }

    #[test]
    fn boosting_reduces_error_over_single_tree() {
        let (data, targets) = friedman_like(600);
        let single = Gbdt::fit(
            &data,
            &targets,
            GbdtConfig {
                n_iterations: 1,
                learning_rate: 1.0,
                max_depth: 3,
                ..GbdtConfig::fast()
            },
        );
        let boosted = Gbdt::fit(
            &data,
            &targets,
            GbdtConfig {
                n_iterations: 50,
                learning_rate: 0.3,
                max_depth: 3,
                ..GbdtConfig::fast()
            },
        );
        let e1 = rmse(&single.predict(&data), &targets);
        let e2 = rmse(&boosted.predict(&data), &targets);
        assert!(e2 < e1 * 0.5, "single {e1}, boosted {e2}");
    }

    #[test]
    fn generalises_to_held_out_rows() {
        let (data, targets) = friedman_like(800);
        let train_idx: Vec<usize> = (0..800).filter(|i| i % 5 != 0).collect();
        let test_idx: Vec<usize> = (0..800).filter(|i| i % 5 == 0).collect();
        let train_rows: Vec<Vec<f64>> = train_idx.iter().map(|&i| data.row(i).to_vec()).collect();
        let train_targets: Vec<f64> = train_idx.iter().map(|&i| targets[i]).collect();
        let test_rows: Vec<Vec<f64>> = test_idx.iter().map(|&i| data.row(i).to_vec()).collect();
        let test_targets: Vec<f64> = test_idx.iter().map(|&i| targets[i]).collect();

        let model = Gbdt::fit(
            &FeatureMatrix::from_rows(&train_rows),
            &train_targets,
            GbdtConfig::fast(),
        );
        let preds = model.predict(&FeatureMatrix::from_rows(&test_rows));
        let err = rmse(&preds, &test_targets);
        let std = {
            let m = test_targets.iter().sum::<f64>() / test_targets.len() as f64;
            (test_targets.iter().map(|t| (t - m).powi(2)).sum::<f64>() / test_targets.len() as f64)
                .sqrt()
        };
        assert!(err < std * 0.5, "rmse {err} vs target std {std}");
    }

    #[test]
    fn prediction_is_deterministic_for_fixed_seed() {
        let (data, targets) = friedman_like(200);
        let a = Gbdt::fit(&data, &targets, GbdtConfig::fast());
        let b = Gbdt::fit(&data, &targets, GbdtConfig::fast());
        assert_eq!(a.predict(&data), b.predict(&data));
    }

    #[test]
    fn constant_target_is_reproduced_exactly() {
        let (data, _) = friedman_like(100);
        let targets = vec![2.5; 100];
        let model = Gbdt::fit(&data, &targets, GbdtConfig::fast());
        for p in model.predict(&data) {
            assert!((p - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn n_trees_matches_iterations() {
        let (data, targets) = friedman_like(100);
        let model = Gbdt::fit(
            &data,
            &targets,
            GbdtConfig {
                n_iterations: 7,
                ..GbdtConfig::fast()
            },
        );
        assert_eq!(model.n_trees(), 7);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = FeatureMatrix::from_rows(&[]);
        let _ = Gbdt::fit(&data, &[], GbdtConfig::fast());
    }
}
