//! Regression error metrics.

/// Mean squared error.
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty input");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    mse(predictions, targets).sqrt()
}

/// Mean absolute error.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty input");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_when_equal() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(mse(&v, &v), 0.0);
        assert_eq!(rmse(&v, &v), 0.0);
        assert_eq!(mae(&v, &v), 0.0);
    }

    #[test]
    fn known_values() {
        let p = vec![1.0, 2.0];
        let t = vec![3.0, 2.0];
        assert!((mse(&p, &t) - 2.0).abs() < 1e-12);
        assert!((rmse(&p, &t) - 2f64.sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominates_mae() {
        // With unequal errors, RMSE >= MAE (Jensen).
        let p = vec![0.0, 0.0, 0.0];
        let t = vec![1.0, 2.0, 6.0];
        assert!(rmse(&p, &t) >= mae(&p, &t));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let _ = mae(&[], &[]);
    }
}
