//! Feature matrices, binning and categorical target encoding.

use serde::{Deserialize, Serialize};

/// A dense row-major feature matrix used by the booster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    n_rows: usize,
    n_features: usize,
    /// Row-major values.
    values: Vec<f64>,
}

impl FeatureMatrix {
    /// Build from row-major values.
    pub fn new(n_rows: usize, n_features: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n_rows * n_features, "shape mismatch");
        Self {
            n_rows,
            n_features,
            values,
        }
    }

    /// Build from a list of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_features = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(n_rows * n_features);
        for row in rows {
            assert_eq!(row.len(), n_features, "ragged rows");
            values.extend_from_slice(row);
        }
        Self {
            n_rows,
            n_features,
            values,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// One row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.values[r * self.n_features..(r + 1) * self.n_features]
    }

    /// Value of feature `f` in row `r`.
    #[inline]
    pub fn get(&self, r: usize, f: usize) -> f64 {
        self.values[r * self.n_features + f]
    }

    /// Extract one feature column as a vector.
    pub fn column(&self, f: usize) -> Vec<f64> {
        (0..self.n_rows).map(|r| self.get(r, f)).collect()
    }
}

/// Per-feature quantile bin edges used to discretise continuous features
/// before histogram-based split finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinMapper {
    /// For each feature, the sorted upper edges of its bins (len = bins - 1).
    edges: Vec<Vec<f64>>,
}

impl BinMapper {
    /// Fit quantile bins (at most `max_bins` per feature) on the data.
    pub fn fit(data: &FeatureMatrix, max_bins: usize) -> Self {
        assert!(max_bins >= 2, "need at least two bins");
        let mut edges = Vec::with_capacity(data.n_features());
        for f in 0..data.n_features() {
            let mut col = data.column(f);
            col.retain(|v| v.is_finite());
            col.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            col.dedup();
            let mut feature_edges = Vec::new();
            if col.len() > 1 {
                let n_edges = (max_bins - 1).min(col.len() - 1);
                for i in 1..=n_edges {
                    let q = i as f64 / (n_edges + 1) as f64;
                    let idx = ((col.len() - 1) as f64 * q).round() as usize;
                    let edge = col[idx];
                    if feature_edges.last().is_none_or(|&last| edge > last) {
                        feature_edges.push(edge);
                    }
                }
            }
            edges.push(feature_edges);
        }
        Self { edges }
    }

    /// Number of bins for a feature (edges + 1).
    pub fn n_bins(&self, feature: usize) -> usize {
        self.edges[feature].len() + 1
    }

    /// Map a raw value to its bin index for a feature.
    #[inline]
    pub fn bin(&self, feature: usize, value: f64) -> usize {
        let edges = &self.edges[feature];
        edges.partition_point(|&e| value > e)
    }

    /// Representative threshold value of a bin boundary (the edge itself).
    pub fn edge(&self, feature: usize, bin: usize) -> Option<f64> {
        self.edges[feature].get(bin).copied()
    }
}

/// Ordered target (mean) encoding for a single categorical column — the same
/// family of statistics CatBoost uses to turn categories into numbers.
///
/// Encoding value for category `c`: `(sum_target(c) + prior_weight * prior) /
/// (count(c) + prior_weight)` where `prior` is the global target mean. Unseen
/// categories encode to the prior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetEncoder {
    prior: f64,
    prior_weight: f64,
    /// Per-code smoothed mean target.
    encodings: Vec<f64>,
}

impl TargetEncoder {
    /// Fit on category codes and their targets.
    pub fn fit(codes: &[u32], targets: &[f64], prior_weight: f64) -> Self {
        assert_eq!(codes.len(), targets.len(), "codes/targets length mismatch");
        let prior = if targets.is_empty() {
            0.0
        } else {
            targets.iter().sum::<f64>() / targets.len() as f64
        };
        let cardinality = codes.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut sums = vec![0.0; cardinality];
        let mut counts = vec![0usize; cardinality];
        for (&c, &t) in codes.iter().zip(targets) {
            sums[c as usize] += t;
            counts[c as usize] += 1;
        }
        let encodings = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &n)| (s + prior_weight * prior) / (n as f64 + prior_weight))
            .collect();
        Self {
            prior,
            prior_weight,
            encodings,
        }
    }

    /// Global target mean used for unseen categories.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Smoothing pseudo-count.
    pub fn prior_weight(&self) -> f64 {
        self.prior_weight
    }

    /// Encode a slice of codes.
    pub fn encode(&self, codes: &[u32]) -> Vec<f64> {
        codes
            .iter()
            .map(|&c| {
                self.encodings
                    .get(c as usize)
                    .copied()
                    .unwrap_or(self.prior)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_matrix_accessors() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_shape_panics() {
        let _ = FeatureMatrix::new(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn bin_mapper_is_monotone() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = FeatureMatrix::new(100, 1, values);
        let mapper = BinMapper::fit(&m, 8);
        assert!(mapper.n_bins(0) <= 8);
        assert!(mapper.n_bins(0) >= 2);
        let mut prev = 0;
        for i in 0..100 {
            let b = mapper.bin(0, i as f64);
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bin_mapper_handles_constant_feature() {
        let m = FeatureMatrix::new(10, 1, vec![7.0; 10]);
        let mapper = BinMapper::fit(&m, 8);
        assert_eq!(mapper.n_bins(0), 1);
        assert_eq!(mapper.bin(0, 7.0), 0);
        assert_eq!(mapper.bin(0, 100.0), 0);
    }

    #[test]
    fn bin_mapper_respects_max_bins_on_few_distinct_values() {
        let m = FeatureMatrix::new(6, 1, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        let mapper = BinMapper::fit(&m, 64);
        assert!(mapper.n_bins(0) <= 3);
    }

    #[test]
    fn target_encoder_orders_categories_by_mean() {
        // Category 0 has mean 10, category 1 has mean 1.
        let codes = vec![0, 0, 0, 1, 1, 1];
        let targets = vec![9.0, 10.0, 11.0, 0.0, 1.0, 2.0];
        let enc = TargetEncoder::fit(&codes, &targets, 1.0);
        let encoded = enc.encode(&[0, 1]);
        assert!(encoded[0] > encoded[1]);
        // Smoothing pulls both toward the prior (5.5).
        assert!(encoded[0] < 10.0);
        assert!(encoded[1] > 1.0);
    }

    #[test]
    fn target_encoder_unseen_category_gets_prior() {
        let enc = TargetEncoder::fit(&[0, 1], &[2.0, 4.0], 1.0);
        let encoded = enc.encode(&[99]);
        assert!((encoded[0] - enc.prior()).abs() < 1e-12);
        assert!((enc.prior() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn target_encoder_heavy_smoothing_approaches_prior() {
        let codes = vec![0, 1, 1];
        let targets = vec![100.0, 0.0, 0.0];
        let enc = TargetEncoder::fit(&codes, &targets, 1e6);
        let encoded = enc.encode(&[0, 1]);
        assert!((encoded[0] - encoded[1]).abs() < 0.01);
    }
}
