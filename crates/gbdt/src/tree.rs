//! A single histogram-based regression tree.

use serde::{Deserialize, Serialize};

use crate::dataset::{BinMapper, FeatureMatrix};

/// Hyper-parameters of one regression tree.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum variance-reduction gain required to split a node.
    pub min_gain: f64,
    /// Maximum number of histogram bins per feature.
    pub max_bins: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_leaf: 8,
            min_gain: 1e-9,
            max_bins: 64,
        }
    }
}

/// One node of the tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to `(data, targets)` restricted to `row_indices`.
    pub fn fit(
        data: &FeatureMatrix,
        targets: &[f64],
        row_indices: &[usize],
        config: &TreeConfig,
        mapper: &BinMapper,
    ) -> Self {
        assert_eq!(data.n_rows(), targets.len(), "data/target length mismatch");
        let mut tree = Self { nodes: Vec::new() };
        if row_indices.is_empty() {
            tree.nodes.push(Node::Leaf { value: 0.0 });
            return tree;
        }
        tree.build(data, targets, row_indices.to_vec(), 0, config, mapper);
        tree
    }

    /// Recursively build the node for `indices`, returning its arena id.
    fn build(
        &mut self,
        data: &FeatureMatrix,
        targets: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        mapper: &BinMapper,
    ) -> usize {
        let n = indices.len();
        let sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let mean = sum / n as f64;

        if depth >= config.max_depth || n < 2 * config.min_samples_leaf {
            return self.push_leaf(mean);
        }

        match self.best_split(data, targets, &indices, config, mapper) {
            Some((feature, threshold, gain)) if gain > config.min_gain => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| data.get(i, feature) <= threshold);
                if left_idx.len() < config.min_samples_leaf
                    || right_idx.len() < config.min_samples_leaf
                {
                    return self.push_leaf(mean);
                }
                // Reserve the split slot before recursing so child ids are known.
                let node_id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean });
                let left = self.build(data, targets, left_idx, depth + 1, config, mapper);
                let right = self.build(data, targets, right_idx, depth + 1, config, mapper);
                self.nodes[node_id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node_id
            }
            _ => self.push_leaf(mean),
        }
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Best (feature, threshold, gain) via per-feature histograms of target
    /// sums. Gain is the reduction in sum of squared deviations.
    fn best_split(
        &self,
        data: &FeatureMatrix,
        targets: &[f64],
        indices: &[usize],
        config: &TreeConfig,
        mapper: &BinMapper,
    ) -> Option<(usize, f64, f64)> {
        let n = indices.len() as f64;
        let total_sum: f64 = indices.iter().map(|&i| targets[i]).sum();
        let mut best: Option<(usize, f64, f64)> = None;

        for feature in 0..data.n_features() {
            let n_bins = mapper.n_bins(feature);
            if n_bins < 2 {
                continue;
            }
            let mut bin_sum = vec![0.0; n_bins];
            let mut bin_count = vec![0usize; n_bins];
            for &i in indices {
                let b = mapper.bin(feature, data.get(i, feature));
                bin_sum[b] += targets[i];
                bin_count[b] += 1;
            }
            // Scan split points between bins.
            let mut left_sum = 0.0;
            let mut left_count = 0usize;
            for b in 0..n_bins - 1 {
                left_sum += bin_sum[b];
                left_count += bin_count[b];
                let right_count = indices.len() - left_count;
                if left_count < config.min_samples_leaf || right_count < config.min_samples_leaf {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                // Variance-reduction gain (up to constants):
                // sum_left^2/n_left + sum_right^2/n_right - sum^2/n.
                let gain = left_sum * left_sum / left_count as f64
                    + right_sum * right_sum / right_count as f64
                    - total_sum * total_sum / n;
                if gain > best.map_or(config.min_gain, |(_, _, g)| g) {
                    if let Some(threshold) = mapper.edge(feature, b) {
                        best = Some((feature, threshold, gain));
                    }
                }
            }
        }
        best
    }

    /// Predict a single row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict every row of a feature matrix.
    pub fn predict(&self, data: &FeatureMatrix) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the tree.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> (FeatureMatrix, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0, with a second noise feature.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 37) % 11) as f64])
            .collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (FeatureMatrix::from_rows(&rows), targets)
    }

    #[test]
    fn fits_a_step_function() {
        let (data, targets) = step_data(200);
        let indices: Vec<usize> = (0..200).collect();
        let config = TreeConfig::default();
        let mapper = BinMapper::fit(&data, config.max_bins);
        let tree = RegressionTree::fit(&data, &targets, &indices, &config, &mapper);
        let preds = tree.predict(&data);
        let err: f64 = preds
            .iter()
            .zip(&targets)
            .map(|(p, t)| (p - t).powi(2))
            .sum::<f64>()
            / 200.0;
        assert!(err < 0.02, "err = {err}");
        assert!(tree.depth() >= 1);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn depth_zero_gives_single_leaf_mean() {
        let (data, targets) = step_data(50);
        let indices: Vec<usize> = (0..50).collect();
        let config = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let mapper = BinMapper::fit(&data, config.max_bins);
        let tree = RegressionTree::fit(&data, &targets, &indices, &config, &mapper);
        assert_eq!(tree.n_nodes(), 1);
        let mean = targets.iter().sum::<f64>() / 50.0;
        assert!((tree.predict_row(&[0.1, 0.0]) - mean).abs() < 1e-12);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (data, targets) = step_data(40);
        let indices: Vec<usize> = (0..40).collect();
        let config = TreeConfig {
            min_samples_leaf: 25,
            ..Default::default()
        };
        let mapper = BinMapper::fit(&data, config.max_bins);
        let tree = RegressionTree::fit(&data, &targets, &indices, &config, &mapper);
        // No split can produce two leaves of 25+ samples out of 40 rows.
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn empty_index_set_gives_zero_leaf() {
        let (data, targets) = step_data(10);
        let config = TreeConfig::default();
        let mapper = BinMapper::fit(&data, config.max_bins);
        let tree = RegressionTree::fit(&data, &targets, &[], &config, &mapper);
        assert_eq!(tree.predict_row(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let (data, _) = step_data(30);
        let targets = vec![4.2; 30];
        let indices: Vec<usize> = (0..30).collect();
        let config = TreeConfig::default();
        let mapper = BinMapper::fit(&data, config.max_bins);
        let tree = RegressionTree::fit(&data, &targets, &indices, &config, &mapper);
        for r in 0..30 {
            assert!((tree.predict_row(data.row(r)) - 4.2).abs() < 1e-9);
        }
    }

    #[test]
    fn deeper_trees_fit_better() {
        // Piecewise target with 4 levels needs depth >= 2.
        let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| (r[0] * 4.0).floor()).collect();
        let data = FeatureMatrix::from_rows(&rows);
        let indices: Vec<usize> = (0..400).collect();
        let mapper = BinMapper::fit(&data, 64);
        let shallow = RegressionTree::fit(
            &data,
            &targets,
            &indices,
            &TreeConfig {
                max_depth: 1,
                ..Default::default()
            },
            &mapper,
        );
        let deep = RegressionTree::fit(
            &data,
            &targets,
            &indices,
            &TreeConfig {
                max_depth: 4,
                ..Default::default()
            },
            &mapper,
        );
        let err = |tree: &RegressionTree| {
            tree.predict(&data)
                .iter()
                .zip(&targets)
                .map(|(p, t)| (p - t).powi(2))
                .sum::<f64>()
                / 400.0
        };
        assert!(err(&deep) < err(&shallow) * 0.5);
    }
}
