//! Property tests for the SIMD-dispatched, packed matmul kernels: on
//! randomized shapes (including ragged edges that straddle every lane and
//! panel boundary) the dispatched kernels must agree with the frozen seed
//! reference within 1e-10 relative tolerance, and the dispatched path must
//! be deterministic run-to-run for a fixed seed.
//!
//! The kernels are in fact designed to be *bit-identical* to the scalar
//! reference on finite data (single ascending-order accumulation chain per
//! element, multiply-then-add, never FMA — see `nn::matrix` docs), but the
//! contract this suite pins is the tolerance one, so a future kernel that
//! trades bit-exactness for FMA throughput still has a meaningful oracle.

use nn::matrix::reference;
use nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assert element-wise agreement within 1e-10 relative tolerance.
fn assert_close(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!(got.rows(), want.rows(), "{label}: row mismatch");
    assert_eq!(got.cols(), want.cols(), "{label}: col mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        let tol = 1e-10 * (1.0 + w.abs());
        assert!(
            (g - w).abs() <= tol,
            "{label}: element {i} diverged: {g} vs {w}"
        );
    }
}

/// Random shape in `1..=max` per dimension, biased so roughly half the draws
/// cross the packed-path threshold.
fn random_shape(rng: &mut StdRng, max: usize) -> (usize, usize, usize) {
    (
        rng.gen_range(1..=max),
        rng.gen_range(1..=max),
        rng.gen_range(1..=max),
    )
}

#[test]
fn dispatched_matmul_matches_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(101);
    // Fixed ragged shapes that straddle lane (4), tile (16), panel (MR=4,
    // NR=8) and stripe (KC=256, MC=128, NC=512) boundaries, plus the packed
    // large shapes the bench tracks.
    let fixed: &[(usize, usize, usize)] = &[
        (97, 61, 113),
        (1, 1, 1),
        (3, 5, 2),
        (8, 257, 33),
        (16, 300, 515),
        (129, 129, 129),
        (130, 520, 17),
        (96, 64, 640),
        (200, 80, 200),
    ];
    for &(m, k, n) in fixed {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_close(
            &format!("matmul {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
    }
    for round in 0..20 {
        let (m, k, n) = random_shape(&mut rng, 160);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_close(
            &format!("matmul round {round} {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
    }
}

#[test]
fn dispatched_backward_products_match_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(202);
    for round in 0..15 {
        let (m, k, p) = random_shape(&mut rng, 120);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(m, p, 1.0, &mut rng);
        assert_close(
            &format!("at_b round {round} {m}x{k}/{m}x{p}"),
            &a.matmul_at_b(&b),
            &reference::matmul(&reference::transpose(&a), &b),
        );
        let c = Matrix::randn(p, k, 1.0, &mut rng);
        assert_close(
            &format!("a_bt round {round} {m}x{k}/{p}x{k}"),
            &a.matmul_a_bt(&c),
            &reference::matmul(&a, &reference::transpose(&c)),
        );
    }
}

#[test]
fn dispatched_fused_affine_matches_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(303);
    for round in 0..10 {
        let (m, k, n) = random_shape(&mut rng, 140);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let bias: Vec<f64> = (0..n).map(|j| (j as f64).sin()).collect();
        let want = reference::matmul(&a, &b).add_row_vector(&bias);
        assert_close(
            &format!("bias round {round} {m}x{k}x{n}"),
            &a.matmul_bias(&b, &bias),
            &want,
        );
        let mut fused = Matrix::default();
        a.matmul_bias_act_into(&b, &bias, |v| v.tanh(), &mut fused);
        assert_close(
            &format!("bias_act round {round} {m}x{k}x{n}"),
            &fused,
            &want.map(f64::tanh),
        );
    }
}

#[test]
fn dispatched_path_is_deterministic_run_to_run() {
    // For a fixed seed the whole pipeline — operand generation, the
    // dispatched (possibly packed + parallel) product, and the sequential
    // oracle — must produce byte-identical results every run.
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Large enough for the packed driver *and* the parallel threshold.
        let a = Matrix::randn(300, 200, 1.0, &mut rng);
        let b = Matrix::randn(200, 260, 1.0, &mut rng);
        (a.matmul(&b), a.matmul_seq(&b))
    };
    let (first_par, first_seq) = run(7);
    assert_eq!(
        first_par, first_seq,
        "packed/parallel product must match the sequential direct kernels"
    );
    for _ in 0..3 {
        let (par, seq) = run(7);
        assert_eq!(par, first_par, "run-to-run drift in the dispatched path");
        assert_eq!(seq, first_seq, "run-to-run drift in the sequential path");
    }
    let (other_par, _) = run(8);
    assert_ne!(other_par, first_par, "different seeds must differ");
}

#[test]
fn buffer_reuse_across_shape_changes_is_clean() {
    // The packed driver's thread-local pack buffers are grow-only and
    // reused across calls; interleaving shapes must never leak state.
    let mut rng = StdRng::seed_from_u64(404);
    let shapes = [(64, 200, 80), (9, 3, 7), (128, 130, 520), (33, 65, 17)];
    for &(m, k, n) in shapes.iter().chain(shapes.iter().rev()) {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_close(
            &format!("interleaved {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
    }
}
