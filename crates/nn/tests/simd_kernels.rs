//! Property tests for the SIMD-dispatched, packed matmul kernels, with a
//! **dual oracle**: on bit-exact tiers (scalar/SSE2/AVX2 — the default) the
//! dispatched kernels must match the frozen seed reference *byte-for-byte*;
//! on the opt-in fused tiers (`SURROGATE_SIMD=fma`/`avx512`) a fused
//! multiply-add necessarily rounds differently than the mul-then-add scalar
//! chain, so the same assertions drop to a ≤1e-8 relative tolerance against
//! the same reference. Determinism (run-to-run, and parallel vs sequential
//! within one path) stays byte-exact on *every* tier: fused kernels differ
//! from the scalar reference, never from themselves.
//!
//! Randomized shapes include ragged edges that straddle every lane and
//! panel boundary, for both the `f64` training kernels and the `f32`
//! inference instantiation (which doubles the lane count and therefore has
//! its own seams).

use nn::matrix::reference;
use nn::{Matrix, Matrix32};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether the active tier promises byte-identity with the scalar chain.
fn bit_exact() -> bool {
    nn::active_tier().bit_exact()
}

/// Dual oracle for pure products: byte-for-byte on bit-exact tiers, ≤1e-8
/// relative on the fused (FMA/AVX-512) tiers.
fn assert_kernel_match(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!(got.rows(), want.rows(), "{label}: row mismatch");
    assert_eq!(got.cols(), want.cols(), "{label}: col mismatch");
    if bit_exact() {
        assert_eq!(
            got.data(),
            want.data(),
            "{label}: bit-exact tier diverged from the reference"
        );
        return;
    }
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        let tol = 1e-8 * (1.0 + w.abs());
        assert!(
            (g - w).abs() <= tol,
            "{label}: element {i} outside fused-tier tolerance: {g} vs {w}"
        );
    }
}

/// Tolerance oracle for comparisons whose rounding *order* legitimately
/// differs (e.g. bias-seeded vs product-then-broadcast): tight on bit-exact
/// tiers, 1e-8 on fused tiers.
fn assert_close(label: &str, got: &Matrix, want: &Matrix) {
    assert_eq!(got.rows(), want.rows(), "{label}: row mismatch");
    assert_eq!(got.cols(), want.cols(), "{label}: col mismatch");
    let rel = if bit_exact() { 1e-10 } else { 1e-8 };
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        let tol = rel * (1.0 + w.abs());
        assert!(
            (g - w).abs() <= tol,
            "{label}: element {i} diverged: {g} vs {w}"
        );
    }
}

/// Random shape in `1..=max` per dimension, biased so roughly half the draws
/// cross the packed-path threshold.
fn random_shape(rng: &mut StdRng, max: usize) -> (usize, usize, usize) {
    (
        rng.gen_range(1..=max),
        rng.gen_range(1..=max),
        rng.gen_range(1..=max),
    )
}

#[test]
fn dispatched_matmul_matches_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(101);
    // Fixed ragged shapes that straddle lane (up to 8 f64 / 16 f32), tile,
    // panel (MR=4, NR=2·lanes) and stripe (KC=256, MC=128, NC=512)
    // boundaries, plus the packed large shapes the bench tracks.
    let fixed: &[(usize, usize, usize)] = &[
        (97, 61, 113),
        (1, 1, 1),
        (3, 5, 2),
        (8, 257, 33),
        (16, 300, 515),
        (129, 129, 129),
        (130, 520, 17),
        (96, 64, 640),
        (200, 80, 200),
    ];
    for &(m, k, n) in fixed {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_kernel_match(
            &format!("matmul {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
    }
    for round in 0..20 {
        let (m, k, n) = random_shape(&mut rng, 160);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_kernel_match(
            &format!("matmul round {round} {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
    }
}

#[test]
fn dispatched_backward_products_match_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(202);
    for round in 0..15 {
        let (m, k, p) = random_shape(&mut rng, 120);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(m, p, 1.0, &mut rng);
        assert_kernel_match(
            &format!("at_b round {round} {m}x{k}/{m}x{p}"),
            &a.matmul_at_b(&b),
            &reference::matmul(&reference::transpose(&a), &b),
        );
        let c = Matrix::randn(p, k, 1.0, &mut rng);
        assert_kernel_match(
            &format!("a_bt round {round} {m}x{k}/{p}x{k}"),
            &a.matmul_a_bt(&c),
            &reference::matmul(&a, &reference::transpose(&c)),
        );
    }
}

#[test]
fn dispatched_fused_affine_matches_reference_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(303);
    for round in 0..10 {
        let (m, k, n) = random_shape(&mut rng, 140);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let bias: Vec<f64> = (0..n).map(|j| (j as f64).sin()).collect();
        let want = reference::matmul(&a, &b).add_row_vector(&bias);
        assert_close(
            &format!("bias round {round} {m}x{k}x{n}"),
            &a.matmul_bias(&b, &bias),
            &want,
        );
        let mut fused = Matrix::default();
        a.matmul_bias_act_into(&b, &bias, |v| v.tanh(), &mut fused);
        assert_close(
            &format!("bias_act round {round} {m}x{k}x{n}"),
            &fused,
            &want.map(f64::tanh),
        );
    }
}

#[test]
fn dispatched_path_is_deterministic_run_to_run() {
    // For a fixed seed the whole pipeline — operand generation, the
    // dispatched (possibly packed + parallel) product, and the sequential
    // oracle — must produce byte-identical results every run, on every
    // tier including the fused ones.
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Large enough for the packed driver *and* the parallel threshold.
        let a = Matrix::randn(300, 200, 1.0, &mut rng);
        let b = Matrix::randn(200, 260, 1.0, &mut rng);
        (a.matmul(&b), a.matmul_seq(&b))
    };
    let (first_par, first_seq) = run(7);
    // The packed/parallel product vs the direct sequential kernels: byte
    // equality on bit-exact tiers, tolerance on fused tiers (the packed
    // edge tiles keep separate roundings while the direct path fuses).
    assert_kernel_match("packed/parallel vs sequential", &first_par, &first_seq);
    for _ in 0..3 {
        let (par, seq) = run(7);
        assert_eq!(par, first_par, "run-to-run drift in the dispatched path");
        assert_eq!(seq, first_seq, "run-to-run drift in the sequential path");
    }
    let (other_par, _) = run(8);
    assert_ne!(other_par, first_par, "different seeds must differ");
}

#[test]
fn packed_parallel_is_byte_identical_to_packed_sequential() {
    // The tentpole contract of the multi-threaded packed driver: with an
    // explicit parallel flag, fanning row blocks over the pool must be
    // byte-identical to the same packed path run sequentially — on every
    // tier (fused tiers differ from scalar, never from themselves), at
    // every thread count, including shapes with ragged final blocks.
    let mut rng = StdRng::seed_from_u64(505);
    for &(m, k, n) in &[
        (300usize, 200usize, 260usize),
        (130, 520, 130),
        (97, 300, 515),
        (513, 64, 129),
    ] {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        let seq = a.matmul_packed_with(&b, false);
        let par = a.matmul_packed_with(&b, true);
        assert_eq!(
            seq.data(),
            par.data(),
            "packed parallel vs sequential drifted at {m}x{k}x{n} \
             (threads={})",
            rayon::current_num_threads()
        );
    }
}

#[test]
fn f32_dispatched_matmul_tracks_the_f64_reference() {
    // The f32 instantiation doubles the lane count, so its seams sit at
    // different column offsets; sweep ragged shapes and compare against the
    // f64 reference of the rounded operands within single-precision
    // accumulation error.
    let mut rng = StdRng::seed_from_u64(606);
    let fixed: &[(usize, usize, usize)] = &[
        (97, 61, 113),
        (1, 1, 1),
        (3, 5, 2),
        (8, 257, 33),
        (16, 300, 515),
        (130, 520, 17),
    ];
    for &(m, k, n) in fixed {
        let a64 = Matrix::randn(m, k, 1.0, &mut rng);
        let b64 = Matrix::randn(k, n, 1.0, &mut rng);
        let a32 = Matrix32::from_f64(&a64);
        let b32 = Matrix32::from_f64(&b64);
        let want = reference::matmul(&a32.to_f64(), &b32.to_f64());
        let got = a32.matmul(&b32);
        let tol = 1e-6 * (k as f64).max(1.0);
        for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g as f64 - w).abs() <= tol * (1.0 + w.abs()),
                "f32 matmul {m}x{k}x{n} element {i}: {g} vs {w}"
            );
        }
    }
}

#[test]
fn f32_packed_parallel_is_byte_identical_to_sequential() {
    let mut rng = StdRng::seed_from_u64(707);
    let a = Matrix32::from_f64(&Matrix::randn(301, 200, 1.0, &mut rng));
    let b = Matrix32::from_f64(&Matrix::randn(200, 261, 1.0, &mut rng));
    let seq = a.matmul_packed_with(&b, false);
    let par = a.matmul_packed_with(&b, true);
    assert_eq!(seq, par, "f32 packed parallel vs sequential drifted");
    // Run-to-run determinism of the dispatched f32 path.
    assert_eq!(a.matmul(&b), a.matmul(&b));
}

#[test]
fn buffer_reuse_across_shape_changes_is_clean() {
    // The packed driver's per-thread pack buffers are grow-only, reused
    // across calls, and — since the no-re-zero change — only their padding
    // lanes are cleared; interleaving shapes (and element types, which use
    // separate buffers) must never leak state between calls.
    let mut rng = StdRng::seed_from_u64(404);
    let shapes = [(64, 200, 80), (9, 3, 7), (128, 130, 520), (33, 65, 17)];
    for &(m, k, n) in shapes.iter().chain(shapes.iter().rev()) {
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_kernel_match(
            &format!("interleaved {m}x{k}x{n}"),
            &a.matmul(&b),
            &reference::matmul(&a, &b),
        );
        // Interleave an f32 product of a *different* ragged shape so both
        // buffer families see mismatched panel extents back-to-back.
        let a32 = Matrix32::from_f64(&Matrix::randn(n, m, 1.0, &mut rng));
        let b32 = Matrix32::from_f64(&Matrix::randn(m, k, 1.0, &mut rng));
        let got = a32.matmul(&b32);
        let want = reference::matmul(&a32.to_f64(), &b32.to_f64());
        let tol = 1e-6 * (m as f64).max(1.0);
        for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
            assert!(
                (g as f64 - w).abs() <= tol * (1.0 + w.abs()),
                "interleaved f32 {n}x{m}x{k} element {i}: {g} vs {w}"
            );
        }
    }
}
