//! Contention stress test for the packed matmul driver on the rayon shim:
//! many pool tasks each running packed matmuls (which themselves fan row
//! blocks across the same pool — nested parallelism), hammering the
//! per-thread pack buffers from every executor at once. Run it under
//! `RAYON_NUM_THREADS=2` and `=4` (the CI matrix does) to pin determinism
//! at real thread counts.
//!
//! The per-thread pack buffers are thread-locals, so tasks landing on the
//! same worker reuse (and re-grow) one buffer back-to-back while tasks on
//! different workers never share one; either way every product computed
//! *under contention* must be byte-identical to the same dispatched call
//! made uncontended from the main thread — on every tier, including the
//! fused ones: the kernels are deterministic per tier and tile assignment
//! is shape-only.

use nn::{Matrix, Matrix32};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Mixed ragged shapes: some above the packed threshold, some below, so
/// concurrent tasks keep resizing their thread's pack buffers up and down.
const SHAPES: &[(usize, usize, usize)] = &[
    (130, 200, 260),
    (9, 5, 7),
    (64, 300, 96),
    (33, 520, 17),
    (97, 61, 113),
    (200, 80, 200),
];

#[test]
fn concurrent_packed_matmuls_match_their_uncontended_oracles() {
    // Per-task oracles: the *same* dispatched call, made up front from the
    // main thread with no competing tasks. On bit-exact tiers also pin the
    // dispatched result against the direct sequential kernels.
    let bit_exact = nn::active_tier().bit_exact();
    let mut rng = StdRng::seed_from_u64(42);
    let cases: Vec<(Matrix, Matrix, Matrix)> = SHAPES
        .iter()
        .cycle()
        .take(24)
        .map(|&(m, k, n)| {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let want = a.matmul(&b);
            if bit_exact {
                assert_eq!(want.data(), a.matmul_seq(&b).data());
            }
            (a, b, want)
        })
        .collect();

    for round in 0..4 {
        let results: Vec<(usize, Matrix)> = cases
            .par_iter()
            .enumerate()
            .map(|(i, (a, b, _))| {
                // Inside a pool task: the thread index must be a bounded
                // worker index or None (the caller draining its own job).
                if let Some(idx) = rayon::current_thread_index() {
                    assert!(
                        idx + 1 < rayon::current_num_threads(),
                        "worker index {idx} out of range"
                    );
                }
                // Nested parallel packed product from within a pool task.
                (i, a.matmul(b))
            })
            .collect();
        for (i, got) in results {
            let (_, _, want) = &cases[i];
            assert_eq!(
                got.data(),
                want.data(),
                "round {round}, case {i}: concurrent packed product \
                 diverged from its uncontended oracle \
                 (threads={})",
                rayon::current_num_threads()
            );
        }
    }
}

#[test]
fn concurrent_f32_and_f64_products_do_not_cross_talk() {
    // f32 and f64 pack buffers are separate thread-locals; interleave both
    // element types across concurrent tasks to prove neither corrupts the
    // other's panels.
    let mut rng = StdRng::seed_from_u64(77);
    let cases: Vec<(Matrix, Matrix, Matrix, Matrix32)> = SHAPES
        .iter()
        .cycle()
        .take(12)
        .map(|&(m, k, n)| {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let want64 = a.matmul(&b);
            let want32 = Matrix32::from_f64(&a).matmul(&Matrix32::from_f64(&b));
            (a, b, want64, want32)
        })
        .collect();

    let results: Vec<(usize, Matrix, Matrix32)> = cases
        .par_iter()
        .enumerate()
        .map(|(i, (a, b, _, _))| {
            let got64 = a.matmul(b);
            let got32 = Matrix32::from_f64(a).matmul(&Matrix32::from_f64(b));
            (i, got64, got32)
        })
        .collect();
    for (i, got64, got32) in results {
        let (_, _, want64, want32) = &cases[i];
        assert_eq!(got64.data(), want64.data(), "f64 case {i} diverged");
        assert_eq!(&got32, want32, "f32 case {i} diverged");
    }
}

#[test]
fn repeated_rounds_are_byte_identical_across_thread_counts() {
    // The same workload must produce the same bytes on every round — and,
    // because chunk boundaries are size-derived and tile assignment is
    // shape-only, the bytes are also independent of RAYON_NUM_THREADS (the
    // CI matrix runs this file at 2 and 4 to enforce that; within one
    // process we can only pin round-to-round identity).
    let make = || {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::randn(257, 192, 1.0, &mut rng);
        let b = Matrix::randn(192, 301, 1.0, &mut rng);
        let products: Vec<Matrix> = (0..6_usize)
            .into_par_iter()
            .map(|i| {
                let scaled = a.map(|v| v * (1.0 + i as f64));
                scaled.matmul(&b)
            })
            .collect();
        products
    };
    let first = make();
    for _ in 0..2 {
        assert_eq!(make(), first, "round-to-round drift under contention");
    }
}
