//! Stochastic sampling helpers used by the generative models.

use rand::Rng;
use rand_distr::{Distribution, Gumbel, Normal};

use crate::loss::softmax_rows;
use crate::matrix::Matrix;
use crate::matrix32::Matrix32;

/// Matrix of i.i.d. standard-normal samples (the latent noise for the VAE,
/// GAN and diffusion models).
pub fn standard_normal_matrix<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    let normal = Normal::new(0.0, 1.0).expect("unit normal is valid");
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| normal.sample(rng)).collect(),
    )
}

/// Fill a caller-owned buffer with i.i.d. standard-normal samples.
///
/// The training-loop variant of [`standard_normal_matrix`]: reuses the
/// buffer's allocation and draws variates with the *pairwise* Box–Muller
/// transform — each uniform pair yields both the cosine and the sine
/// variate, halving the uniform draws and transcendental evaluations per
/// sample. The stream differs from `standard_normal_matrix` for the same
/// RNG state, but remains fully determined by it.
pub fn standard_normal_into<R: Rng>(rows: usize, cols: usize, rng: &mut R, out: &mut Matrix) {
    out.reset(rows, cols);
    let data = out.data_mut();
    let len = data.len();
    let mut i = 0;
    while i + 2 <= len {
        let (z0, z1) = normal_pair(rng);
        data[i] = z0;
        data[i + 1] = z1;
        i += 2;
    }
    if i < len {
        data[i] = normal_pair(rng).0;
    }
}

/// Fill a caller-owned `f32` buffer with i.i.d. standard-normal samples —
/// the inference-tier twin of [`standard_normal_into`].
///
/// The variates are drawn with the *same* `f64` pairwise Box–Muller
/// transform and then rounded to `f32`, so for a given RNG state this
/// produces exactly the `f32` rounding of the `f64` stream: an `f32`
/// sampling run and an `f64` sampling run from the same seed consume
/// identical draws and differ only by precision, which is what lets the
/// end-to-end tests pin their distribution deltas tightly.
pub fn standard_normal_into_f32<R: Rng>(rows: usize, cols: usize, rng: &mut R, out: &mut Matrix32) {
    out.resize_zeroed(rows, cols);
    let data = out.data_mut();
    let len = data.len();
    let mut i = 0;
    while i + 2 <= len {
        let (z0, z1) = normal_pair(rng);
        data[i] = z0 as f32;
        data[i + 1] = z1 as f32;
        i += 2;
    }
    if i < len {
        data[i] = normal_pair(rng).0 as f32;
    }
}

/// One Box–Muller pair of independent standard-normal variates.
#[inline]
fn normal_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1 = rand::unit_f64(rng).max(f64::MIN_POSITIVE);
    let u2 = rand::unit_f64(rng);
    let radius = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (radius * theta.cos(), radius * theta.sin())
}

/// Gumbel-softmax relaxation of categorical sampling.
///
/// Adds Gumbel(0, 1) noise to the logits and applies a temperature-scaled
/// softmax, giving differentiable "almost one-hot" rows. Temperature → 0
/// recovers hard argmax sampling; CTGAN-family generators use τ ≈ 0.2.
pub fn gumbel_softmax<R: Rng>(logits: &Matrix, temperature: f64, rng: &mut R) -> Matrix {
    assert!(temperature > 0.0, "temperature must be positive");
    let gumbel = Gumbel::new(0.0, 1.0).expect("unit gumbel is valid");
    let noisy = logits.map(|_| 0.0).zip(logits, |_, l| l); // clone via zip keeps shape
    let mut noisy = noisy;
    for v in noisy.data_mut() {
        *v = (*v + gumbel.sample(rng)) / temperature;
    }
    softmax_rows(&noisy)
}

/// Sample a categorical index from each row of a probability matrix.
pub fn sample_categorical_rows<R: Rng>(probs: &Matrix, rng: &mut R) -> Vec<usize> {
    let mut out = Vec::with_capacity(probs.rows());
    for r in 0..probs.rows() {
        let row = probs.row(r);
        let total: f64 = row.iter().sum();
        let mut u = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut chosen = row.len() - 1;
        for (i, &p) in row.iter().enumerate() {
            if u < p {
                chosen = i;
                break;
            }
            u -= p;
        }
        out.push(chosen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_matrix_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = standard_normal_matrix(200, 50, &mut rng);
        let mean = m.mean();
        let var = m.data().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / m.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_into_moments_reuse_and_determinism() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = Matrix::zeros(1, 1);
        standard_normal_into(150, 67, &mut rng, &mut buf);
        assert_eq!((buf.rows(), buf.cols()), (150, 67));
        let mean = buf.mean();
        let var = buf.data().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        // Odd element count exercises the lone-variate tail. Same seed, same
        // stream — including into a reused, previously larger buffer.
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        let mut first = Matrix::zeros(0, 0);
        standard_normal_into(3, 5, &mut a, &mut first);
        standard_normal_into(3, 5, &mut b, &mut buf);
        assert_eq!(first, buf);
    }

    #[test]
    fn f32_normal_fill_is_the_rounded_f64_stream() {
        // Same seed: the f32 fill must be exactly the f32 rounding of the
        // f64 fill, element for element (including the odd-length tail).
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut hi = Matrix::zeros(0, 0);
        let mut lo = Matrix32::zeros(4, 4);
        standard_normal_into(5, 3, &mut a, &mut hi);
        standard_normal_into_f32(5, 3, &mut b, &mut lo);
        assert_eq!((lo.rows(), lo.cols()), (5, 3));
        for (&l, &h) in lo.data().iter().zip(hi.data()) {
            assert_eq!(l, h as f32);
        }
        // And both RNGs end in the same state.
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gumbel_softmax_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Matrix::from_rows(&[vec![2.0, 0.0, -2.0], vec![0.0, 0.0, 0.0]]);
        let soft = gumbel_softmax(&logits, 0.5, &mut rng);
        for r in 0..soft.rows() {
            let sum: f64 = soft.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gumbel_softmax_low_temperature_prefers_max_logit() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Matrix::from_rows(&[vec![5.0, 0.0, 0.0]]);
        let mut wins = 0;
        for _ in 0..200 {
            let soft = gumbel_softmax(&logits, 0.1, &mut rng);
            let row = soft.row(0);
            if row[0] > row[1] && row[0] > row[2] {
                wins += 1;
            }
        }
        assert!(wins > 180, "wins = {wins}");
    }

    #[test]
    fn categorical_sampling_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let probs = Matrix::from_rows(&[vec![0.9, 0.1, 0.0]]);
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[sample_categorical_rows(&probs, &mut rng)[0]] += 1;
        }
        assert!(counts[0] > 1600);
        assert_eq!(counts[2], 0);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = gumbel_softmax(&Matrix::zeros(1, 2), 0.0, &mut rng);
    }
}
