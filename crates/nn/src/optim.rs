//! First-order optimizers.
//!
//! Optimizer state is keyed by an opaque `usize` so several parameter tensors
//! (and several networks) can share one optimizer instance; the MLP assigns
//! stable keys per layer.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Interface of a stateful first-order optimizer.
pub trait Optimizer {
    /// Update `params` in place given `grads`, using per-key internal state.
    fn update(&mut self, key: usize, params: &mut [f64], grads: &[f64], lr: f64);
    /// Reset all internal state (moments, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sgd {
    /// Momentum coefficient in `[0, 1)`; zero disables momentum.
    pub momentum: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new() -> Self {
        Self::default()
    }

    /// SGD with momentum.
    pub fn with_momentum(momentum: f64) -> Self {
        Self {
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, key: usize, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                *p -= lr * g;
            }
            return;
        }
        let velocity = self
            .velocity
            .entry(key)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(
            velocity.len(),
            params.len(),
            "stale optimizer state for key"
        );
        for ((p, g), v) in params.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            *v = self.momentum * *v + g;
            *p -= lr * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Configuration of the [`Adam`] optimizer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Exponential decay of the first moment.
    pub beta1: f64,
    /// Exponential decay of the second moment.
    pub beta2: f64,
    /// Numerical stabiliser added to the denominator.
    pub eps: f64,
    /// Decoupled weight decay (AdamW style); zero disables it.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam / AdamW.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New optimizer with the given hyper-parameters.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            state: HashMap::new(),
        }
    }

    /// The hyper-parameters in use.
    pub fn config(&self) -> AdamConfig {
        self.config
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new(AdamConfig::default())
    }
}

impl Optimizer for Adam {
    fn update(&mut self, key: usize, params: &mut [f64], grads: &[f64], lr: f64) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let cfg = self.config;
        let state = self.state.entry(key).or_insert_with(|| AdamState {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(state.m.len(), params.len(), "stale optimizer state for key");
        state.t += 1;
        let t = state.t as f64;
        let bias1 = 1.0 - cfg.beta1.powf(t);
        let bias2 = 1.0 - cfg.beta2.powf(t);
        let decay = lr * cfg.weight_decay;
        // Fused single pass over zipped slices: no per-element bounds checks
        // and the weight-decay branch hoisted to a precomputed factor.
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grads.iter())
            .zip(state.m.iter_mut().zip(state.v.iter_mut()))
        {
            *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
            *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            if cfg.weight_decay > 0.0 {
                *p -= decay * *p;
            }
            *p -= lr * m_hat / (v_hat.sqrt() + cfg.eps);
        }
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with each optimizer and check convergence.
    fn run<O: Optimizer>(opt: &mut O, lr: f64, steps: usize) -> f64 {
        let mut x = vec![10.0];
        for _ in 0..steps {
            let grad = vec![2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &grad, lr);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new();
        let x = run(&mut sgd, 0.1, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::with_momentum(0.9);
        let x = run(&mut sgd, 0.02, 400);
        assert!((x - 3.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::default();
        let x = run(&mut adam, 0.1, 800);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_state_is_per_key() {
        let mut adam = Adam::default();
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        adam.update(1, &mut a, &[1.0], 0.1);
        adam.update(2, &mut b, &[1.0], 0.1);
        // Both start from fresh moments so the first step must be identical.
        assert!((a[0] - b[0]).abs() < 1e-12);
        adam.reset();
        let mut c = vec![0.0];
        adam.update(1, &mut c, &[1.0], 0.1);
        assert!((c[0] - a[0]).abs() < 1e-12);
    }

    #[test]
    fn adamw_weight_decay_shrinks_params() {
        let mut adam = Adam::new(AdamConfig {
            weight_decay: 0.1,
            ..Default::default()
        });
        let mut x = vec![5.0];
        // Zero gradient: only the decoupled decay acts.
        adam.update(0, &mut x, &[0.0], 0.1);
        assert!(x[0] < 5.0);
    }

    #[test]
    #[should_panic(expected = "param/grad length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::default();
        let mut x = vec![0.0, 1.0];
        adam.update(0, &mut x, &[1.0], 0.1);
    }
}
