//! Linear layers and activations with manual forward/backward passes,
//! plus the forward-only `f32` mirror ([`LinearLayer32`]) the inference
//! tier runs on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::matrix32::Matrix32;

/// Activation applied element-wise after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// No non-linearity.
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.2 on the negative side (the slope CTGAN-family
    /// generators conventionally use).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation.
    pub fn forward(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Apply the activation in `f32` (native single-precision transcendental
    /// ops — not a cast round-trip through [`Activation::forward`], so the
    /// inference tier never pays `f64` tanh/exp latency). Agreement with the
    /// `f64` path is covered by the end-to-end distribution-delta tests.
    pub fn forward_f32(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative of the activation expressed in terms of the *pre-activation*
    /// input `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.2
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
        }
    }
}

/// Interface shared by trainable layers.
pub trait Layer {
    /// Forward pass on a batch (rows are samples).
    fn forward(&mut self, input: &Matrix) -> Matrix;
    /// Backward pass: given dL/d(output), accumulate parameter gradients and
    /// return dL/d(input). Must be called after `forward` on the same batch.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;
    /// Number of trainable parameters.
    fn n_params(&self) -> usize;
}

/// Fully connected layer `y = act(x·W + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearLayer {
    /// Weight matrix, shape (in_dim × out_dim).
    pub weights: Matrix,
    /// Bias vector, length out_dim.
    pub bias: Vec<f64>,
    /// Activation applied after the affine map.
    pub activation: Activation,
    /// Accumulated dL/dW from the last backward pass.
    pub grad_weights: Matrix,
    /// Accumulated dL/db from the last backward pass.
    pub grad_bias: Vec<f64>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_pre_activation: Option<Matrix>,
    /// Scratch for `Wᵀ` in the backward pass, reused across steps.
    #[serde(skip)]
    scratch_weights_t: Matrix,
}

impl LinearLayer {
    /// Create a layer with He/Xavier-style initialisation: weights are
    /// `N(0, 2/(in+out))`, biases start at zero.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut R) -> Self {
        let std = (2.0 / (in_dim + out_dim) as f64).sqrt();
        Self {
            weights: Matrix::randn(in_dim, out_dim, std, rng),
            bias: vec![0.0; out_dim],
            activation,
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: vec![0.0; out_dim],
            cache_input: None,
            cache_pre_activation: None,
            scratch_weights_t: Matrix::default(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass without storing caches (inference only): affine map,
    /// bias and activation fused into one kernel pass, so a single matrix is
    /// allocated per layer.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    /// [`LinearLayer::infer`] into a caller-owned buffer: the activation is
    /// applied by the matmul kernel while each output row is cache-hot, and
    /// nothing is allocated.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        let act = self.activation;
        input.matmul_bias_act_into(&self.weights, &self.bias, |v| act.forward(v), out);
    }

    /// Training forward pass into a caller-owned buffer (caches stored for
    /// a subsequent backward): the fused affine lands in the persistent
    /// pre-activation cache and the activation is mapped into `out`, so
    /// repeated steps allocate nothing.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let mut pre = self.cache_pre_activation.take().unwrap_or_default();
        input.matmul_bias_into(&self.weights, &self.bias, &mut pre);
        let act = self.activation;
        pre.map_into(|v| act.forward(v), out);
        match &mut self.cache_input {
            Some(cache) => cache.copy_from(input),
            None => self.cache_input = Some(input.clone()),
        }
        self.cache_pre_activation = Some(pre);
    }

    /// Accumulate this layer's parameter gradients (`dL/dW`, `dL/db`) from
    /// `dL/d(output)` **without** computing `dL/d(input)` — the variant the
    /// fused discriminator update uses on its first layer, where the input
    /// gradient would be discarded and its `A·Wᵀ` product (the widest matmul
    /// of the backward pass) can be skipped entirely.
    pub fn backward_params(&mut self, grad_output: &Matrix) {
        let _ = self.grad_pre_and_params(grad_output);
    }

    /// Shared backward head: `dL/d(pre)` plus both parameter gradients.
    fn grad_pre_and_params(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cache_input
            .as_ref()
            .expect("backward called before forward");
        let pre = self
            .cache_pre_activation
            .as_ref()
            .expect("backward called before forward");
        let act = self.activation;
        // dL/d(pre) = dL/d(out) * act'(pre)
        let grad_pre = grad_output.zip(pre, |g, p| g * act.derivative(p));
        // dL/dW = inputᵀ · dL/d(pre), computed without materializing the
        // transpose and accumulated into the persistent gradient buffers.
        input.matmul_at_b_into(&grad_pre, &mut self.grad_weights);
        grad_pre.sum_rows_into(&mut self.grad_bias);
        grad_pre
    }
}

/// Forward-only `f32` mirror of a fitted [`LinearLayer`] — the inference
/// tier. Built once from the trained `f64` weights
/// ([`LinearLayer32::from_f64`]); carries no gradients, caches or serde.
#[derive(Debug, Clone)]
pub struct LinearLayer32 {
    /// Weight matrix, shape (in_dim × out_dim), down-converted once.
    weights: Matrix32,
    /// Bias vector, length out_dim.
    bias: Vec<f32>,
    /// Activation applied after the affine map.
    activation: Activation,
}

impl LinearLayer32 {
    /// Down-convert a fitted layer (round-to-nearest per parameter).
    pub fn from_f64(layer: &LinearLayer) -> Self {
        Self {
            weights: Matrix32::from_f64(&layer.weights),
            bias: layer.bias.iter().map(|&b| b as f32).collect(),
            activation: layer.activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Inference forward pass into a caller-owned buffer: affine map, bias
    /// and activation fused into one `f32` kernel pass.
    pub fn infer_into(&self, input: &Matrix32, out: &mut Matrix32) {
        let act = self.activation;
        input.matmul_bias_act_into(&self.weights, &self.bias, |v| act.forward_f32(v), out);
    }
}

impl Layer for LinearLayer {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let grad_pre = self.grad_pre_and_params(grad_output);
        // dL/d(input) = dL/d(pre) · Wᵀ; the blocked transpose lands in a
        // persistent scratch so only the result is allocated.
        grad_pre.matmul_a_bt_scratch(&self.weights, &mut self.scratch_weights_t)
    }

    fn n_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activations_and_derivatives() {
        assert_eq!(Activation::Relu.forward(-1.0), 0.0);
        assert_eq!(Activation::Relu.forward(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert!((Activation::LeakyRelu.forward(-1.0) + 0.2).abs() < 1e-12);
        assert!((Activation::Sigmoid.forward(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Sigmoid.derivative(0.0) - 0.25).abs() < 1e-12);
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(Activation::Identity.derivative(5.0), 1.0);
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = LinearLayer::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![0.0, -1.0, 0.5, 2.0]]);
        let y1 = layer.forward(&x);
        let y2 = layer.infer(&x);
        assert_eq!(y1.rows(), 2);
        assert_eq!(y1.cols(), 3);
        assert_eq!(y1, y2);
        assert_eq!(layer.in_dim(), 4);
        assert_eq!(layer.out_dim(), 3);
        assert_eq!(layer.n_params(), 15);
    }

    #[test]
    fn fused_forward_matches_unfused_composition() {
        let mut rng = StdRng::seed_from_u64(9);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let mut layer = LinearLayer::new(6, 4, act, &mut rng);
            for b in layer.bias.iter_mut() {
                *b = 0.1;
            }
            let x = Matrix::randn(5, 6, 1.0, &mut rng);
            let unfused = x
                .matmul(&layer.weights)
                .add_row_vector(&layer.bias)
                .map(|v| act.forward(v));
            for (a, b) in layer.infer(&x).data().iter().zip(unfused.data()) {
                assert!(
                    (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                    "{act:?}: fused {a} vs unfused {b}"
                );
            }
            // The cached-training path must agree with inference exactly.
            assert_eq!(layer.forward(&x), layer.infer(&x));
            // And reuse of the cache buffers on a second batch must be clean.
            let x2 = Matrix::randn(3, 6, 1.0, &mut rng);
            assert_eq!(layer.forward(&x2), layer.infer(&x2));
        }
    }

    #[test]
    fn f32_layer_tracks_f64_within_single_precision() {
        let mut rng = StdRng::seed_from_u64(77);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            let mut layer = LinearLayer::new(12, 9, act, &mut rng);
            for (i, b) in layer.bias.iter_mut().enumerate() {
                *b = (i as f64 * 0.3).sin();
            }
            let layer32 = LinearLayer32::from_f64(&layer);
            assert_eq!(layer32.in_dim(), 12);
            assert_eq!(layer32.out_dim(), 9);
            let x = Matrix::randn(6, 12, 1.0, &mut rng);
            let want = layer.infer(&x);
            let mut got = Matrix32::default();
            layer32.infer_into(&Matrix32::from_f64(&x), &mut got);
            for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
                assert!(
                    (g as f64 - w).abs() <= 1e-4 * (1.0 + w.abs()),
                    "{act:?} element {i}: f32 {g} vs f64 {w}"
                );
            }
        }
    }

    /// Numerical gradient check through the fused forward: perturb each
    /// weight and compare the finite difference of a scalar loss with the
    /// analytic gradient.
    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = LinearLayer::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::randn(5, 3, 1.0, &mut rng);
        let target = Matrix::randn(5, 2, 1.0, &mut rng);

        let loss_of = |layer: &LinearLayer, x: &Matrix| -> f64 {
            let out = layer.infer(x);
            out.sub(&target).map(|v| v * v).mean()
        };

        // Analytic gradients.
        let out = layer.forward(&x);
        let grad_out = out.sub(&target).scale(2.0 / (out.len() as f64));
        let grad_in = layer.backward(&grad_out);

        let eps = 1e-6;
        // Check a handful of weight entries.
        for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let orig = layer.weights.get(r, c);
            layer.weights.set(r, c, orig + eps);
            let lp = loss_of(&layer, &x);
            layer.weights.set(r, c, orig - eps);
            let lm = loss_of(&layer, &x);
            layer.weights.set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = layer.grad_weights.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "weight ({r},{c}): numeric {numeric} analytic {analytic}"
            );
        }

        // Check an input gradient entry.
        let mut x2 = x.clone();
        let orig = x2.get(2, 1);
        x2.set(2, 1, orig + eps);
        let lp = loss_of(&layer, &x2);
        x2.set(2, 1, orig - eps);
        let lm = loss_of(&layer, &x2);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - grad_in.get(2, 1)).abs() < 1e-5);
    }

    #[test]
    fn bias_gradient_matches_numerical() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = LinearLayer::new(2, 2, Activation::Sigmoid, &mut rng);
        let x = Matrix::randn(4, 2, 1.0, &mut rng);

        let loss_of = |layer: &LinearLayer| layer.infer(&x).map(|v| v * v).mean();

        let out = layer.forward(&x);
        let grad_out = out.scale(2.0 / out.len() as f64);
        layer.backward(&grad_out);

        let eps = 1e-6;
        let orig = layer.bias[1];
        layer.bias[1] = orig + eps;
        let lp = loss_of(&layer);
        layer.bias[1] = orig - eps;
        let lm = loss_of(&layer);
        layer.bias[1] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - layer.grad_bias[1]).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = LinearLayer::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
