//! Dense row-major `f32` matrix for the inference/sampling tier.
//!
//! Training stays in `f64` ([`crate::matrix::Matrix`]); sampling a fitted
//! generator is a forward-only workload where `f32` halves memory traffic
//! and doubles SIMD lanes (see [`crate::simd::SimdTier::lanes_f32`]), so the
//! models down-convert their fitted weights once
//! ([`crate::mlp::Mlp::to_f32`]) and run the whole reverse/decoder pass in
//! single precision. The products here run on the *same* generic two-level
//! kernels as the `f64` path — direct row kernels for small shapes, the
//! cache-blocked packed driver above the [`crate::kernels::use_packed`]
//! threshold, rayon-parallel over row blocks past the work threshold — just
//! instantiated with `f32` lanes.
//!
//! This type is deliberately minimal: it carries exactly the operations the
//! forward/sampling paths need (affine map + activation, element-wise
//! loops, `f64` round-trips at the decode boundary) and no serde — fitted
//! checkpoints remain `f64`, and the `f32` mirror is always derived from
//! them at load time. Like the `f64` kernels, every output element
//! accumulates along one fixed ascending chain, so `f32` products are
//! byte-identical run-to-run, across thread counts, and across the
//! packed/direct split on bit-exact tiers; accuracy vs the `f64` path is
//! validated end-to-end by distribution deltas in the model tests, not
//! bitwise.

use crate::kernels;
use crate::matrix::{Matrix, PAR_THRESHOLD};
use rayon::prelude::*;

/// Dense row-major `f32` matrix (inference tier).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix32 {
    /// Matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a row-major vector. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Down-convert an `f64` matrix (round-to-nearest per element).
    pub fn from_f64(m: &Matrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.data().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Up-convert to `f64` (exact: every `f32` is representable).
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshape to `rows × cols` of zeros, reusing the allocation.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Element-wise map in place.
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix32) -> Matrix32 {
        let mut out = Matrix32::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix32::matmul`] into a caller-owned buffer.
    pub fn matmul_into(&self, other: &Matrix32, out: &mut Matrix32) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        self.accumulate_product(other, out);
    }

    /// Sequential product through the direct (unpacked) row kernels — the
    /// oracle for the `f32` packed/parallel determinism tests.
    pub fn matmul_seq(&self, other: &Matrix32) -> Matrix32 {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix32::zeros(self.rows, other.cols);
        let (n, k) = (other.cols, self.cols);
        for (r, out_row) in out.data.chunks_mut(n.max(1)).enumerate() {
            kernels::strided_row_elem::<f32>(&self.data, r * k, 1, k, &other.data, n, out_row);
        }
        out
    }

    /// Bench/test hook: the packed driver with an explicit `parallel` flag,
    /// bypassing the shape split (the `f32` twin of
    /// `Matrix::matmul_packed_with`).
    #[doc(hidden)]
    pub fn matmul_packed_with(&self, other: &Matrix32, parallel: bool) -> Matrix32 {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix32::zeros(self.rows, other.cols);
        kernels::packed_matmul::<f32>(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            parallel,
        );
        out
    }

    /// Accumulate `self × other` on top of whatever `out` already holds,
    /// choosing the packed driver for large shapes and the direct row
    /// kernels otherwise (same shape split as the `f64` path).
    fn accumulate_product(&self, other: &Matrix32, out: &mut Matrix32) {
        let (m, n, k) = (self.rows, other.cols, self.cols);
        let work = m * n * k;
        if kernels::use_packed(m, k, n) {
            kernels::packed_matmul::<f32>(
                &self.data,
                m,
                k,
                &other.data,
                n,
                &mut out.data,
                work >= PAR_THRESHOLD,
            );
        } else {
            Self::for_each_out_row(out, work, |r, out_row| {
                kernels::strided_row_elem::<f32>(&self.data, r * k, 1, k, &other.data, n, out_row);
            });
        }
    }

    /// Run `kernel` over every output row, in parallel above the work
    /// threshold and sequentially (same kernel, same chunk order) below it.
    fn for_each_out_row(
        out: &mut Matrix32,
        work: usize,
        kernel: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        let n = out.cols.max(1);
        if work >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            out.data
                .chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        }
    }

    /// Fully fused affine + activation: `act(self × other + bias)` into a
    /// caller-owned buffer — the `f32` twin of
    /// `Matrix::matmul_bias_act_into`, which is the whole forward pass of a
    /// linear layer.
    pub fn matmul_bias_act_into(
        &self,
        other: &Matrix32,
        bias: &[f32],
        act: impl Fn(f32) -> f32 + Sync,
        out: &mut Matrix32,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(bias.len(), other.cols, "bias width mismatch");
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        for _ in 0..self.rows {
            out.data.extend_from_slice(bias);
        }
        let (m, n, k) = (self.rows, other.cols, self.cols);
        if kernels::use_packed(m, k, n) {
            self.accumulate_product(other, out);
            for v in &mut out.data {
                *v = act(*v);
            }
        } else {
            let work = m * n * k;
            Self::for_each_out_row(out, work, |r, out_row| {
                kernels::strided_row_elem::<f32>(&self.data, r * k, 1, k, &other.data, n, out_row);
                for v in out_row.iter_mut() {
                    *v = act(*v);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// `f32` product vs the `f64` product of the same (f32-representable)
    /// operands: the only divergence is accumulation rounding, bounded by
    /// roughly `k · eps_f32` relative.
    fn assert_tracks_f64(label: &str, got: &Matrix32, want: &Matrix, k: usize) {
        assert_eq!(got.rows(), want.rows(), "{label}: row mismatch");
        assert_eq!(got.cols(), want.cols(), "{label}: col mismatch");
        let tol = 1e-6 * (k as f64).max(1.0);
        for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
            let err = (g as f64 - w).abs();
            assert!(
                err <= tol * (1.0 + w.abs()),
                "{label}: element {i} diverged: {g} vs {w} (err {err:.3e})"
            );
        }
    }

    #[test]
    fn f32_matmul_tracks_f64_across_the_shape_split() {
        let mut rng = StdRng::seed_from_u64(61);
        // Direct, packed-sequential and packed-parallel shapes.
        for &(m, k, n) in &[
            (3usize, 5usize, 4usize),
            (16, 300, 64),
            (130, 520, 130),
            (97, 61, 113),
        ] {
            let a64 = Matrix::randn(m, k, 1.0, &mut rng);
            let b64 = Matrix::randn(k, n, 1.0, &mut rng);
            let a32 = Matrix32::from_f64(&a64);
            let b32 = Matrix32::from_f64(&b64);
            // Compare against the f64 product of the *rounded* operands so
            // operand quantization does not pollute the kernel error bound.
            let want = a32.to_f64().matmul(&b32.to_f64());
            assert_tracks_f64(&format!("matmul {m}x{k}x{n}"), &a32.matmul(&b32), &want, k);
        }
    }

    #[test]
    fn f32_packed_and_parallel_paths_match_sequential() {
        let mut rng = StdRng::seed_from_u64(67);
        let a = Matrix32::from_f64(&Matrix::randn(130, 260, 1.0, &mut rng));
        let b = Matrix32::from_f64(&Matrix::randn(260, 140, 1.0, &mut rng));
        let seq = a.matmul_seq(&b);
        let packed_seq = a.matmul_packed_with(&b, false);
        let packed_par = a.matmul_packed_with(&b, true);
        // Parallelism never changes f32 results: fixed accumulation chains.
        assert_eq!(
            packed_seq, packed_par,
            "f32 packed parallel vs sequential drifted"
        );
        if crate::simd::active_tier().bit_exact() {
            assert_eq!(seq, packed_seq, "f32 packed vs direct drifted");
        }
        // Run-to-run determinism of the dispatched path.
        assert_eq!(a.matmul(&b), a.matmul(&b));
    }

    #[test]
    fn f32_fused_affine_matches_composition() {
        let mut rng = StdRng::seed_from_u64(71);
        let a = Matrix32::from_f64(&Matrix::randn(9, 7, 1.0, &mut rng));
        let b = Matrix32::from_f64(&Matrix::randn(7, 5, 1.0, &mut rng));
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.25 - 0.5).collect();
        let mut fused = Matrix32::default();
        a.matmul_bias_act_into(&b, &bias, |v| v.max(0.0), &mut fused);
        let mut unfused = a.matmul(&b);
        for r in 0..unfused.rows() {
            for (v, &bv) in unfused.row_mut(r).iter_mut().zip(&bias) {
                *v += bv;
            }
        }
        unfused.map_assign(|v| v.max(0.0));
        for (i, (&f, &u)) in fused.data().iter().zip(unfused.data()).enumerate() {
            assert!(
                (f - u).abs() <= 1e-5 * (1.0 + u.abs()),
                "fused f32 affine diverged at {i}: {f} vs {u}"
            );
        }
    }

    #[test]
    fn round_trip_conversions() {
        let mut rng = StdRng::seed_from_u64(73);
        let m64 = Matrix::randn(6, 4, 1.0, &mut rng);
        let m32 = Matrix32::from_f64(&m64);
        assert_eq!(m32.rows(), 6);
        assert_eq!(m32.cols(), 4);
        // f32 -> f64 -> f32 is lossless.
        assert_eq!(Matrix32::from_f64(&m32.to_f64()), m32);
        for (&lo, &hi) in m32.data().iter().zip(m64.data()) {
            assert!((lo as f64 - hi).abs() <= 1e-7 * (1.0 + hi.abs()));
        }
    }
}
