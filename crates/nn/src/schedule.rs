//! Learning-rate schedules.
//!
//! The paper trains every surrogate model "with a learning rate of 0.0002,
//! which decays following a cosine scheduler"; [`CosineDecay`] implements
//! exactly that schedule.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule mapping a step index to a learning rate.
pub trait LrSchedule {
    /// Learning rate at `step` (0-based) out of the schedule's horizon.
    fn lr_at(&self, step: usize) -> f64;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLr {
    /// The constant value returned for every step.
    pub lr: f64,
}

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _step: usize) -> f64 {
        self.lr
    }
}

/// Cosine decay from `base_lr` down to `min_lr` over `total_steps`, with an
/// optional linear warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CosineDecay {
    /// Initial (peak) learning rate.
    pub base_lr: f64,
    /// Final learning rate reached at `total_steps`.
    pub min_lr: f64,
    /// Total number of steps over which to decay.
    pub total_steps: usize,
    /// Number of initial steps spent linearly warming up from zero.
    pub warmup_steps: usize,
}

impl CosineDecay {
    /// The paper's schedule: base LR 2e-4, cosine to zero, no warm-up.
    pub fn paper_default(total_steps: usize) -> Self {
        Self {
            base_lr: 2e-4,
            min_lr: 0.0,
            total_steps: total_steps.max(1),
            warmup_steps: 0,
        }
    }
}

impl LrSchedule for CosineDecay {
    fn lr_at(&self, step: usize) -> f64 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.base_lr * (step as f64 + 1.0) / self.warmup_steps as f64;
        }
        let effective = (step - self.warmup_steps)
            .min(self.total_steps - self.warmup_steps.min(self.total_steps));
        let horizon = (self.total_steps.saturating_sub(self.warmup_steps)).max(1);
        let progress = (effective as f64 / horizon as f64).clamp(0.0, 1.0);
        let cosine = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
        self.min_lr + (self.base_lr - self.min_lr) * cosine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_constant() {
        let s = ConstantLr { lr: 0.01 };
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(10_000), 0.01);
    }

    #[test]
    fn cosine_starts_at_base_and_ends_at_min() {
        let s = CosineDecay::paper_default(1000);
        assert!((s.lr_at(0) - 2e-4).abs() < 1e-12);
        assert!(s.lr_at(1000) < 1e-9);
        assert!(s.lr_at(2000) < 1e-9, "stays at min past the horizon");
    }

    #[test]
    fn cosine_is_monotone_decreasing_without_warmup() {
        let s = CosineDecay::paper_default(500);
        let mut prev = f64::INFINITY;
        for step in 0..=500 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-15, "step {step}");
            prev = lr;
        }
    }

    #[test]
    fn halfway_point_is_half_the_base() {
        let s = CosineDecay {
            base_lr: 1.0,
            min_lr: 0.0,
            total_steps: 100,
            warmup_steps: 0,
        };
        assert!((s.lr_at(50) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = CosineDecay {
            base_lr: 1.0,
            min_lr: 0.0,
            total_steps: 110,
            warmup_steps: 10,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!(s.lr_at(5) < s.lr_at(9));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-9);
        assert!(s.lr_at(60) < 1.0);
    }
}
