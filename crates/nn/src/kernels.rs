//! Two-level matmul kernel architecture behind [`crate::matrix::Matrix`]
//! and [`crate::matrix32::Matrix32`].
//!
//! **Level 1 — vectorized microkernels.** Every inner kernel is written once,
//! generically, over a tiny lane abstraction ([`SimdVec`]) whose
//! implementations cover the full tier × element matrix: portable scalar,
//! SSE2, AVX2, FMA and AVX-512 registers, each instantiated for `f64` and
//! `f32` lanes (the `f32` instantiations double the lane count for the
//! inference tier). The concrete instantiations live behind
//! `#[target_feature]` wrappers and the generic bodies are
//! `#[inline(always)]`, so each monomorphization compiles as one fully
//! vectorized function; the tier to run is picked once per process by
//! [`crate::simd::active_tier`].
//!
//! **Level 2 — cache-blocked panel packing.** Shapes whose `B` operand
//! exceeds the L1-resident tile ([`use_packed`]) run a blocked driver:
//! `B` is packed into contiguous `NR`-column panels and `A` into `MR`-row
//! panels (both zero-padded to full panels), and an `MR×NR` register-tile
//! microkernel sweeps `KC`-deep stripes so every packed element is read from
//! L1. The pack buffers are **per-thread** (thread-local storage keys every
//! buffer by its owning thread, so pool workers never contend) and
//! **grow-only without re-zeroing**: packing overwrites exactly the live
//! region and explicitly zeroes only the padding lanes of partial panels, so
//! a training loop that calls the packed path repeatedly performs no
//! per-call allocations *and* no redundant memset of panel bytes it is about
//! to fill anyway.
//!
//! **Numerical contract.** On the bit-exact tiers (scalar/SSE2/AVX2) every
//! kernel — packed or direct — accumulates each output element along the
//! inner dimension in ascending index order, one `mul` + one `add` per term
//! (never FMA), starting from the value already in the output slot. Results
//! are therefore byte-identical across those tiers, across the
//! packed/direct split, across thread counts, and to the register-tiled
//! scalar kernel PR 2 shipped (frozen in `matrix::reference::tiled_matmul`
//! as the perf baseline); only the documented `±0.0`/non-finite caveat
//! against the seed reference kernel remains. The opt-in FMA/AVX-512 tiers
//! replace the `mul`+`add` pair with a fused multiply-add ([`SimdVec::
//! mul_acc`]) — one rounding per term instead of two — so they are *not*
//! bit-equal to the scalar chain and are validated against it within 1e-8
//! relative tolerance instead (see `tests/simd_kernels.rs`). They remain
//! deterministic: the accumulation chain per element is still fixed by the
//! shape alone, so fused results are byte-identical run-to-run and across
//! thread counts.

use crate::simd::{active_tier, SimdTier};
use std::cell::RefCell;

/// Rows per packed `A` panel (register-tile height of the microkernel).
pub(crate) const MR: usize = 4;
/// Inner-dimension stripe depth of the packed driver.
const KC: usize = 256;
/// Row-block height handed to one (possibly parallel) packing task.
const MC: usize = 128;
/// Column-block width packed per `B` panel sweep.
const NC: usize = 512;

/// Shapes whose `B` operand overflows the L1-resident tile go through the
/// packed driver; small training shapes stay on the direct row kernels.
pub(crate) fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= 2 * MR && k * n > 8 * 1024
}

// ---------------------------------------------------------------------------
// Element abstraction: the scalar type the kernels are generic over.
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread `A`/`B` pack buffers, grow-only, keyed by owning thread
    /// via thread-local storage (one pair per element type).
    static PACK_A_F64: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static PACK_B_F64: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static PACK_A_F32: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B_F32: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Scalar element type the kernels are generic over: `f64` for the training
/// path, `f32` for the inference tier. Besides arithmetic, an element type
/// knows its lane count per tier, owns its thread-local pack buffers, and
/// dispatches the concrete `#[target_feature]` kernel instantiations for
/// the active tier.
pub(crate) trait Elem: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    const ZERO: Self;

    /// Vector lanes per register for this element type on `tier`.
    fn lanes(tier: SimdTier) -> usize;

    /// `acc + a·b` with separate multiply and add roundings — the edge
    /// kernels and scalar tails use this on every tier, which is what keeps
    /// the bit-exact tiers bit-exact.
    fn mul_add_sep(acc: Self, a: Self, b: Self) -> Self;

    fn with_pack_a<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R;
    fn with_pack_b<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R;

    /// Dispatch one strided row-kernel call on `tier`.
    ///
    /// # Safety
    ///
    /// Same pointer-validity contracts as [`row_kernel_v`]; `tier` must not
    /// exceed what the host CPU supports.
    unsafe fn row_kernel(
        tier: SimdTier,
        a_base: *const Self,
        a_stride: usize,
        depth: usize,
        b: *const Self,
        n: usize,
        out_row: *mut Self,
    );

    /// Dispatch one packed block-kernel call on `tier`.
    ///
    /// # Safety
    ///
    /// Same panel/output contracts as [`block_kernel_v`]; `tier` must not
    /// exceed what the host CPU supports.
    #[allow(clippy::too_many_arguments)]
    unsafe fn block_kernel(
        tier: SimdTier,
        apack: &[Self],
        bpack: &[Self],
        kc: usize,
        mc: usize,
        nc: usize,
        c: *mut Self,
        ldc: usize,
    );
}

impl Elem for f64 {
    const ZERO: Self = 0.0;

    #[inline(always)]
    fn lanes(tier: SimdTier) -> usize {
        tier.lanes()
    }

    #[inline(always)]
    fn mul_add_sep(acc: Self, a: Self, b: Self) -> Self {
        acc + a * b
    }

    fn with_pack_a<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        PACK_A_F64.with(|buf| f(&mut buf.borrow_mut()))
    }

    fn with_pack_b<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        PACK_B_F64.with(|buf| f(&mut buf.borrow_mut()))
    }

    unsafe fn row_kernel(
        tier: SimdTier,
        a_base: *const Self,
        a_stride: usize,
        depth: usize,
        b: *const Self,
        n: usize,
        out_row: *mut Self,
    ) {
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => row_kernel_avx512_f64(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Fma => row_kernel_fma_f64(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => row_kernel_avx2_f64(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => row_kernel_v::<x86::Sse2F64>(a_base, a_stride, depth, b, n, out_row),
            _ => row_kernel_v::<Scalar1<f64>>(a_base, a_stride, depth, b, n, out_row),
        }
    }

    unsafe fn block_kernel(
        tier: SimdTier,
        apack: &[Self],
        bpack: &[Self],
        kc: usize,
        mc: usize,
        nc: usize,
        c: *mut Self,
        ldc: usize,
    ) {
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => block_kernel_avx512_f64(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Fma => block_kernel_fma_f64(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => block_kernel_avx2_f64(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => block_kernel_v::<x86::Sse2F64>(apack, bpack, kc, mc, nc, c, ldc),
            _ => block_kernel_v::<Scalar1<f64>>(apack, bpack, kc, mc, nc, c, ldc),
        }
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;

    #[inline(always)]
    fn lanes(tier: SimdTier) -> usize {
        tier.lanes_f32()
    }

    #[inline(always)]
    fn mul_add_sep(acc: Self, a: Self, b: Self) -> Self {
        acc + a * b
    }

    fn with_pack_a<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        PACK_A_F32.with(|buf| f(&mut buf.borrow_mut()))
    }

    fn with_pack_b<R>(f: impl FnOnce(&mut Vec<Self>) -> R) -> R {
        PACK_B_F32.with(|buf| f(&mut buf.borrow_mut()))
    }

    unsafe fn row_kernel(
        tier: SimdTier,
        a_base: *const Self,
        a_stride: usize,
        depth: usize,
        b: *const Self,
        n: usize,
        out_row: *mut Self,
    ) {
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => row_kernel_avx512_f32(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Fma => row_kernel_fma_f32(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => row_kernel_avx2_f32(a_base, a_stride, depth, b, n, out_row),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => row_kernel_v::<x86::Sse2F32>(a_base, a_stride, depth, b, n, out_row),
            _ => row_kernel_v::<Scalar1<f32>>(a_base, a_stride, depth, b, n, out_row),
        }
    }

    unsafe fn block_kernel(
        tier: SimdTier,
        apack: &[Self],
        bpack: &[Self],
        kc: usize,
        mc: usize,
        nc: usize,
        c: *mut Self,
        ldc: usize,
    ) {
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx512 => block_kernel_avx512_f32(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Fma => block_kernel_fma_f32(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => block_kernel_avx2_f32(apack, bpack, kc, mc, nc, c, ldc),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => block_kernel_v::<x86::Sse2F32>(apack, bpack, kc, mc, nc, c, ldc),
            _ => block_kernel_v::<Scalar1<f32>>(apack, bpack, kc, mc, nc, c, ldc),
        }
    }
}

// ---------------------------------------------------------------------------
// Lane abstraction.
// ---------------------------------------------------------------------------

/// A small fixed number of element lanes with broadcast/load/store and a
/// multiply-accumulate.
///
/// # Safety
///
/// `load`/`store` dereference raw pointers to `LANES` consecutive elements;
/// callers guarantee validity. Implementations may use `core::arch`
/// intrinsics that are undefined behaviour on CPUs without the matching
/// feature; instantiations are only reachable through the runtime-detected
/// tier dispatch.
trait SimdVec: Copy {
    type E: Elem;
    /// Lanes per register.
    const LANES: usize;
    /// Broadcast one value to all lanes.
    unsafe fn splat(v: Self::E) -> Self;
    /// Unaligned load of `LANES` values.
    unsafe fn load(ptr: *const Self::E) -> Self;
    /// Unaligned store of `LANES` values.
    unsafe fn store(self, ptr: *mut Self::E);
    /// `self + a·b` lane-wise. Bit-exact tiers round the multiply and the
    /// add separately; the FMA/AVX-512 tiers fuse them into one rounding.
    unsafe fn mul_acc(self, a: Self, b: Self) -> Self;
}

/// Portable one-lane fallback.
#[derive(Clone, Copy)]
struct Scalar1<E>(E);

macro_rules! impl_scalar_lane {
    ($elem:ty) => {
        impl SimdVec for Scalar1<$elem> {
            type E = $elem;
            const LANES: usize = 1;
            #[inline(always)]
            unsafe fn splat(v: $elem) -> Self {
                Scalar1(v)
            }
            #[inline(always)]
            unsafe fn load(ptr: *const $elem) -> Self {
                Scalar1(*ptr)
            }
            #[inline(always)]
            unsafe fn store(self, ptr: *mut $elem) {
                *ptr = self.0;
            }
            #[inline(always)]
            unsafe fn mul_acc(self, a: Self, b: Self) -> Self {
                Scalar1(self.0 + a.0 * b.0)
            }
        }
    };
}

impl_scalar_lane!(f64);
impl_scalar_lane!(f32);

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SimdVec;
    use core::arch::x86_64::*;

    /// Implement a lane type over one x86 register width. `$fma` selects
    /// the accumulation flavour: `sep` keeps the bit-exact separate
    /// multiply/add pair, `fused` uses the FMA intrinsic.
    macro_rules! impl_x86_lane {
        ($name:ident, $elem:ty, $reg:ty, $lanes:expr, $set1:ident, $loadu:ident,
         $storeu:ident, sep($mul:ident, $add:ident)) => {
            #[derive(Clone, Copy)]
            pub(super) struct $name($reg);

            impl SimdVec for $name {
                type E = $elem;
                const LANES: usize = $lanes;
                #[inline(always)]
                unsafe fn splat(v: $elem) -> Self {
                    $name($set1(v))
                }
                #[inline(always)]
                unsafe fn load(ptr: *const $elem) -> Self {
                    $name($loadu(ptr))
                }
                #[inline(always)]
                unsafe fn store(self, ptr: *mut $elem) {
                    $storeu(ptr, self.0);
                }
                #[inline(always)]
                unsafe fn mul_acc(self, a: Self, b: Self) -> Self {
                    $name($add(self.0, $mul(a.0, b.0)))
                }
            }
        };
        ($name:ident, $elem:ty, $reg:ty, $lanes:expr, $set1:ident, $loadu:ident,
         $storeu:ident, fused($fmadd:ident)) => {
            #[derive(Clone, Copy)]
            pub(super) struct $name($reg);

            impl SimdVec for $name {
                type E = $elem;
                const LANES: usize = $lanes;
                #[inline(always)]
                unsafe fn splat(v: $elem) -> Self {
                    $name($set1(v))
                }
                #[inline(always)]
                unsafe fn load(ptr: *const $elem) -> Self {
                    $name($loadu(ptr))
                }
                #[inline(always)]
                unsafe fn store(self, ptr: *mut $elem) {
                    $storeu(ptr, self.0);
                }
                #[inline(always)]
                unsafe fn mul_acc(self, a: Self, b: Self) -> Self {
                    $name($fmadd(a.0, b.0, self.0))
                }
            }
        };
    }

    // f64 lanes: two (SSE2, baseline), four (AVX2 mul+add / FMA fused),
    // eight (AVX-512 fused).
    impl_x86_lane!(
        Sse2F64,
        f64,
        __m128d,
        2,
        _mm_set1_pd,
        _mm_loadu_pd,
        _mm_storeu_pd,
        sep(_mm_mul_pd, _mm_add_pd)
    );
    impl_x86_lane!(
        Avx2F64,
        f64,
        __m256d,
        4,
        _mm256_set1_pd,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        sep(_mm256_mul_pd, _mm256_add_pd)
    );
    impl_x86_lane!(
        FmaF64,
        f64,
        __m256d,
        4,
        _mm256_set1_pd,
        _mm256_loadu_pd,
        _mm256_storeu_pd,
        fused(_mm256_fmadd_pd)
    );
    impl_x86_lane!(
        Avx512F64,
        f64,
        __m512d,
        8,
        _mm512_set1_pd,
        _mm512_loadu_pd,
        _mm512_storeu_pd,
        fused(_mm512_fmadd_pd)
    );

    // f32 lanes double every width: four (SSE, baseline), eight (AVX mul+add
    // / FMA fused), sixteen (AVX-512 fused).
    impl_x86_lane!(
        Sse2F32,
        f32,
        __m128,
        4,
        _mm_set1_ps,
        _mm_loadu_ps,
        _mm_storeu_ps,
        sep(_mm_mul_ps, _mm_add_ps)
    );
    impl_x86_lane!(
        Avx2F32,
        f32,
        __m256,
        8,
        _mm256_set1_ps,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        sep(_mm256_mul_ps, _mm256_add_ps)
    );
    impl_x86_lane!(
        FmaF32,
        f32,
        __m256,
        8,
        _mm256_set1_ps,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        fused(_mm256_fmadd_ps)
    );
    impl_x86_lane!(
        Avx512F32,
        f32,
        __m512,
        16,
        _mm512_set1_ps,
        _mm512_loadu_ps,
        _mm512_storeu_ps,
        fused(_mm512_fmadd_ps)
    );
}

// ---------------------------------------------------------------------------
// Level 1: direct row kernels (axpy-shaped, one output row at a time).
// ---------------------------------------------------------------------------

/// One output row of a product: `out_row[j] += Σ_kk a(kk) · b[kk·n + j]`,
/// where `a(kk)` is read from `a_base` with stride `a_stride`. Stride 1 is a
/// plain `A·B` row; stride `ka` with base `col` is row `col` of `Aᵀ·B`.
///
/// Four vector accumulators per column tile keep enough independent
/// add-chains in flight to cover FP latency, and each output element still
/// accumulates as one ascending-`kk` chain.
///
/// # Safety
///
/// `a_base` must be valid for `depth` strided reads, `b` for `depth * n`
/// reads, `out_row` for `n` reads and writes; intrinsics require the lane
/// type's CPU feature.
#[inline(always)]
unsafe fn row_kernel_v<V: SimdVec>(
    a_base: *const V::E,
    a_stride: usize,
    depth: usize,
    b: *const V::E,
    n: usize,
    out_row: *mut V::E,
) {
    let lanes = V::LANES;
    let tile = 4 * lanes;
    let mut j = 0usize;
    while j + tile <= n {
        let mut acc0 = V::load(out_row.add(j));
        let mut acc1 = V::load(out_row.add(j + lanes));
        let mut acc2 = V::load(out_row.add(j + 2 * lanes));
        let mut acc3 = V::load(out_row.add(j + 3 * lanes));
        for kk in 0..depth {
            let av = V::splat(*a_base.add(kk * a_stride));
            let brow = b.add(kk * n + j);
            acc0 = acc0.mul_acc(av, V::load(brow));
            acc1 = acc1.mul_acc(av, V::load(brow.add(lanes)));
            acc2 = acc2.mul_acc(av, V::load(brow.add(2 * lanes)));
            acc3 = acc3.mul_acc(av, V::load(brow.add(3 * lanes)));
        }
        acc0.store(out_row.add(j));
        acc1.store(out_row.add(j + lanes));
        acc2.store(out_row.add(j + 2 * lanes));
        acc3.store(out_row.add(j + 3 * lanes));
        j += tile;
    }
    while j + lanes <= n {
        let mut acc = V::load(out_row.add(j));
        for kk in 0..depth {
            let av = V::splat(*a_base.add(kk * a_stride));
            acc = acc.mul_acc(av, V::load(b.add(kk * n + j)));
        }
        acc.store(out_row.add(j));
        j += lanes;
    }
    while j < n {
        let mut acc = *out_row.add(j);
        for kk in 0..depth {
            acc = V::E::mul_add_sep(acc, *a_base.add(kk * a_stride), *b.add(kk * n + j));
        }
        *out_row.add(j) = acc;
        j += 1;
    }
}

/// Generate the `#[target_feature]` wrappers for one (tier, element)
/// instantiation of the row and block kernels.
macro_rules! kernel_wrappers {
    ($feature:literal, $lane:ty, $elem:ty, $row:ident, $block:ident) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = $feature)]
        unsafe fn $row(
            a_base: *const $elem,
            a_stride: usize,
            depth: usize,
            b: *const $elem,
            n: usize,
            out_row: *mut $elem,
        ) {
            row_kernel_v::<$lane>(a_base, a_stride, depth, b, n, out_row);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = $feature)]
        unsafe fn $block(
            apack: &[$elem],
            bpack: &[$elem],
            kc: usize,
            mc: usize,
            nc: usize,
            c: *mut $elem,
            ldc: usize,
        ) {
            block_kernel_v::<$lane>(apack, bpack, kc, mc, nc, c, ldc);
        }
    };
}

kernel_wrappers!(
    "avx2",
    x86::Avx2F64,
    f64,
    row_kernel_avx2_f64,
    block_kernel_avx2_f64
);
kernel_wrappers!(
    "avx2,fma",
    x86::FmaF64,
    f64,
    row_kernel_fma_f64,
    block_kernel_fma_f64
);
kernel_wrappers!(
    "avx512f",
    x86::Avx512F64,
    f64,
    row_kernel_avx512_f64,
    block_kernel_avx512_f64
);
kernel_wrappers!(
    "avx2",
    x86::Avx2F32,
    f32,
    row_kernel_avx2_f32,
    block_kernel_avx2_f32
);
kernel_wrappers!(
    "avx2,fma",
    x86::FmaF32,
    f32,
    row_kernel_fma_f32,
    block_kernel_fma_f32
);
kernel_wrappers!(
    "avx512f",
    x86::Avx512F32,
    f32,
    row_kernel_avx512_f32,
    block_kernel_avx512_f32
);

/// Dispatch one strided row-kernel call through the active tier.
///
/// `a` supplies the `depth` inner-dimension coefficients starting at
/// `a_offset` with stride `a_stride`; `b` is the row-major right operand
/// with `n` columns and `depth` rows; `out_row` is accumulated in place.
#[inline]
pub(crate) fn strided_row_elem<E: Elem>(
    a: &[E],
    a_offset: usize,
    a_stride: usize,
    depth: usize,
    b: &[E],
    n: usize,
    out_row: &mut [E],
) {
    debug_assert_eq!(out_row.len(), n);
    debug_assert!(depth == 0 || a_offset + (depth - 1) * a_stride < a.len());
    debug_assert!(b.len() >= depth * n);
    let a_base = unsafe { a.as_ptr().add(a_offset) };
    // SAFETY: slice extents checked above; the tier is runtime-detected (or
    // clamped to) a supported feature set.
    unsafe {
        E::row_kernel(
            active_tier(),
            a_base,
            a_stride,
            depth,
            b.as_ptr(),
            n,
            out_row.as_mut_ptr(),
        )
    }
}

/// `f64` alias of [`strided_row_elem`] (the training-path call sites).
#[inline]
pub(crate) fn strided_row(
    a: &[f64],
    a_offset: usize,
    a_stride: usize,
    depth: usize,
    b: &[f64],
    n: usize,
    out_row: &mut [f64],
) {
    strided_row_elem::<f64>(a, a_offset, a_stride, depth, b, n, out_row);
}

// ---------------------------------------------------------------------------
// Level 2: cache-blocked panel packing.
// ---------------------------------------------------------------------------

/// Pack `B[pc..pc+kc, jc..jc+nc]` (row-major, leading dimension `ldb`) into
/// `NR`-column panels: element `(kk, j)` of panel `jp` lands at
/// `(jp·kc + kk)·nr + j`. Columns past `nc` are zero-padded so the
/// microkernel always sees full panels (padded lanes never reach valid
/// output elements).
///
/// The buffer grows monotonically and is **never re-zeroed**: every slot of
/// the live `panels·kc·nr` region is either copied from `B` or explicitly
/// written with the padding zero, so stale bytes from a previous (larger)
/// call can never leak into this product.
#[allow(clippy::too_many_arguments)]
fn pack_b<E: Elem>(
    b: &[E],
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    buf: &mut Vec<E>,
) {
    let panels = nc.div_ceil(nr);
    let need = panels * kc * nr;
    if buf.len() < need {
        buf.resize(need, E::ZERO);
    }
    for jp in 0..panels {
        let cols = nr.min(nc - jp * nr);
        let dst_panel = jp * kc * nr;
        for kk in 0..kc {
            let src = (pc + kk) * ldb + jc + jp * nr;
            let dst = dst_panel + kk * nr;
            buf[dst..dst + cols].copy_from_slice(&b[src..src + cols]);
            for pad in &mut buf[dst + cols..dst + nr] {
                *pad = E::ZERO;
            }
        }
    }
}

/// Pack `A[ic..ic+mc, pc..pc+kc]` (row-major, leading dimension `lda`) into
/// `MR`-row panels: element `(r, kk)` of panel `ip` lands at
/// `(ip·kc + kk)·MR + r`. Rows past `mc` are zero-padded; like [`pack_b`],
/// the buffer grows monotonically and only padding slots are zeroed.
fn pack_a<E: Elem>(
    a: &[E],
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    buf: &mut Vec<E>,
) {
    let panels = mc.div_ceil(MR);
    let need = panels * kc * MR;
    if buf.len() < need {
        buf.resize(need, E::ZERO);
    }
    for ip in 0..panels {
        let rows = MR.min(mc - ip * MR);
        let dst_panel = ip * kc * MR;
        for r in 0..rows {
            let src_row = (ic + ip * MR + r) * lda + pc;
            for kk in 0..kc {
                buf[dst_panel + kk * MR + r] = a[src_row + kk];
            }
        }
        if rows < MR {
            for kk in 0..kc {
                for r in rows..MR {
                    buf[dst_panel + kk * MR + r] = E::ZERO;
                }
            }
        }
    }
}

/// Full `MR × 2·LANES` register-tile microkernel over one packed stripe:
/// loads the output tile, accumulates `kc` ascending-order terms per element
/// (broadcast `A`, two `B` vectors), stores the tile back.
///
/// # Safety
///
/// `ap`/`bp` must point at full packed panels of depth `kc`; `c` must be
/// valid for an `MR × 2·LANES` tile with row stride `ldc`; lane intrinsics
/// require the matching CPU feature.
#[inline(always)]
unsafe fn micro_full<V: SimdVec>(
    kc: usize,
    ap: *const V::E,
    bp: *const V::E,
    c: *mut V::E,
    ldc: usize,
) {
    let lanes = V::LANES;
    let nr = 2 * lanes;
    let mut acc0 = [V::splat(V::E::ZERO); MR];
    let mut acc1 = [V::splat(V::E::ZERO); MR];
    for r in 0..MR {
        acc0[r] = V::load(c.add(r * ldc));
        acc1[r] = V::load(c.add(r * ldc + lanes));
    }
    for kk in 0..kc {
        let b0 = V::load(bp.add(kk * nr));
        let b1 = V::load(bp.add(kk * nr + lanes));
        for r in 0..MR {
            let av = V::splat(*ap.add(kk * MR + r));
            acc0[r] = acc0[r].mul_acc(av, b0);
            acc1[r] = acc1[r].mul_acc(av, b1);
        }
    }
    for r in 0..MR {
        acc0[r].store(c.add(r * ldc));
        acc1[r].store(c.add(r * ldc + lanes));
    }
}

/// Scalar edge-tile kernel for partial `MR`/`NR` extents, reading the same
/// packed panels. Identical ascending-`kk` single-chain accumulation with
/// separate multiply/add roundings, so on bit-exact tiers edge tiles match
/// full tiles bit-for-bit. (Under the fused tiers the edge tiles keep the
/// separate roundings — which rows/columns are edges is fixed by the shape
/// alone, so results stay deterministic.)
///
/// # Safety
///
/// Same panel/output validity contracts as [`micro_full`], restricted to
/// `mr_eff` rows and `nr_eff` columns.
#[allow(clippy::too_many_arguments)]
unsafe fn micro_edge<E: Elem>(
    kc: usize,
    ap: *const E,
    bp: *const E,
    nr: usize,
    c: *mut E,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for r in 0..mr_eff {
        for j in 0..nr_eff {
            let mut acc = *c.add(r * ldc + j);
            for kk in 0..kc {
                acc = E::mul_add_sep(acc, *ap.add(kk * MR + r), *bp.add(kk * nr + j));
            }
            *c.add(r * ldc + j) = acc;
        }
    }
}

/// Sweep one packed `A` block against one packed `B` stripe: all row panels
/// × all column panels, full tiles through [`micro_full`], edges through
/// [`micro_edge`].
///
/// # Safety
///
/// `c` must point at the `(ic, jc)` corner of a buffer with row stride
/// `ldc` covering `mc × nc` writable elements; panels must be packed for
/// this block; lane intrinsics require the matching CPU feature.
#[inline(always)]
unsafe fn block_kernel_v<V: SimdVec>(
    apack: &[V::E],
    bpack: &[V::E],
    kc: usize,
    mc: usize,
    nc: usize,
    c: *mut V::E,
    ldc: usize,
) {
    let nr = 2 * V::LANES;
    let j_panels = nc.div_ceil(nr);
    let i_panels = mc.div_ceil(MR);
    for jp in 0..j_panels {
        let bpanel = bpack.as_ptr().add(jp * kc * nr);
        let nr_eff = nr.min(nc - jp * nr);
        for ip in 0..i_panels {
            let apanel = apack.as_ptr().add(ip * kc * MR);
            let mr_eff = MR.min(mc - ip * MR);
            let ctile = c.add(ip * MR * ldc + jp * nr);
            if mr_eff == MR && nr_eff == nr {
                micro_full::<V>(kc, apanel, bpanel, ctile, ldc);
            } else {
                micro_edge::<V::E>(kc, apanel, bpanel, nr, ctile, ldc, mr_eff, nr_eff);
            }
        }
    }
}

/// Pack one `A` block into the calling thread's buffer and run the tier's
/// block kernel over the packed `B` stripe.
#[allow(clippy::too_many_arguments)]
fn process_row_block<E: Elem>(
    tier: SimdTier,
    a: &[E],
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    bpack: &[E],
    nc: usize,
    c_block: &mut [E],
    ldc: usize,
    c_col: usize,
) {
    E::with_pack_a(|apack| {
        pack_a(a, lda, ic, mc, pc, kc, apack);
        let live = mc.div_ceil(MR) * kc * MR;
        let c = unsafe { c_block.as_mut_ptr().add(c_col) };
        // SAFETY: `c` spans `mc` rows of stride `ldc` inside `c_block`, the
        // panels were packed for exactly this block (the buffer may be
        // larger; only the live prefix is passed), and the tier was
        // runtime-detected (or clamped to) a supported feature set.
        unsafe { E::block_kernel(tier, &apack[..live], bpack, kc, mc, nc, c, ldc) }
    });
}

/// Cache-blocked packed matmul: accumulate `A (m×k) · B (k×n)` into `out`
/// (row-major `m×n`, pre-seeded with zeros or a broadcast bias). Row blocks
/// fan out over the rayon pool when `parallel` is set; every output element
/// is produced by exactly one task with a fixed accumulation chain, so the
/// parallel and sequential paths are byte-identical (on every tier — the
/// fused tiers differ from *scalar*, not from themselves).
pub(crate) fn packed_matmul<E: Elem>(
    a: &[E],
    m: usize,
    k: usize,
    b: &[E],
    n: usize,
    out: &mut [E],
    parallel: bool,
) {
    use rayon::prelude::*;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let tier = active_tier();
    let nr = 2 * E::lanes(tier);
    // Row-block height: `MC` alone would hand a single block (and therefore
    // a single thread) any product with `m <= MC`, so when parallel, shrink
    // blocks until every executor gets a few to steal. The height is derived
    // only from the shape and thread count — never from runtime load — and
    // each output element keeps its fixed accumulation chain, so results
    // stay byte-identical whatever the block size.
    let block_rows = if parallel {
        MC.min(
            m.div_ceil(4 * rayon::current_num_threads())
                .next_multiple_of(MR),
        )
    } else {
        MC
    };
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            E::with_pack_b(|bpack_buf| {
                pack_b(b, n, pc, kc, jc, nc, nr, bpack_buf);
                let live = nc.div_ceil(nr) * kc * nr;
                let bpack: &[E] = &bpack_buf[..live];
                if parallel {
                    out.par_chunks_mut(block_rows * n)
                        .enumerate()
                        .for_each(|(blk, c_block)| {
                            let ic = blk * block_rows;
                            let mc = block_rows.min(m - ic);
                            process_row_block(
                                tier, a, k, ic, mc, pc, kc, bpack, nc, c_block, n, jc,
                            );
                        });
                } else {
                    for (blk, c_block) in out.chunks_mut(block_rows * n).enumerate() {
                        let ic = blk * block_rows;
                        let mc = block_rows.min(m - ic);
                        process_row_block(tier, a, k, ic, mc, pc, kc, bpack, nc, c_block, n, jc);
                    }
                }
            });
            pc += kc;
        }
        jc += nc;
    }
}
