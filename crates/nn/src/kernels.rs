//! Two-level matmul kernel architecture behind [`crate::matrix::Matrix`].
//!
//! **Level 1 — vectorized microkernels.** Every inner kernel is written once,
//! generically, over a tiny lane abstraction ([`SimdF64`]) with three
//! implementations: portable scalar, SSE2 (`__m128d`, two lanes) and AVX2
//! (`__m256d`, four lanes). The concrete instantiations live behind
//! `#[target_feature]` wrappers and the generic bodies are `#[inline(always)]`,
//! so each monomorphization compiles as one fully vectorized function; the
//! tier to run is picked once per process by [`crate::simd::active_tier`].
//!
//! **Level 2 — cache-blocked panel packing.** Shapes whose `B` operand
//! exceeds the L1-resident tile ([`use_packed`]) run a blocked driver:
//! `B` is packed into contiguous `NR`-column panels and `A` into `MR`-row
//! panels (both zero-padded to full panels), and an `MR×NR` register-tile
//! microkernel sweeps `KC`-deep stripes so every packed element is read from
//! L1. The pack buffers are thread-local and grow-only, so a training loop
//! that calls the packed path repeatedly performs no per-call allocations.
//!
//! **Numerical contract.** Every kernel — any tier, packed or direct —
//! accumulates each output element along the inner dimension in ascending
//! index order, one `mul` + one `add` per term (never FMA), starting from the
//! value already in the output slot. Results are therefore byte-identical
//! across tiers, across the packed/direct split, and to the register-tiled
//! scalar kernel PR 2 shipped (frozen in `matrix::reference::tiled_matmul`
//! as the perf baseline); only the documented `±0.0`/non-finite caveat
//! against the seed reference kernel remains.

use crate::simd::{active_tier, SimdTier};
use std::cell::RefCell;

/// Rows per packed `A` panel (register-tile height of the microkernel).
pub(crate) const MR: usize = 4;
/// Inner-dimension stripe depth of the packed driver.
const KC: usize = 256;
/// Row-block height handed to one (possibly parallel) packing task.
const MC: usize = 128;
/// Column-block width packed per `B` panel sweep.
const NC: usize = 512;

/// Shapes whose `B` operand overflows the L1-resident tile go through the
/// packed driver; small training shapes stay on the direct row kernels.
pub(crate) fn use_packed(m: usize, k: usize, n: usize) -> bool {
    m >= 2 * MR && k * n > 8 * 1024
}

// ---------------------------------------------------------------------------
// Lane abstraction.
// ---------------------------------------------------------------------------

/// A small fixed number of `f64` lanes with broadcast/load/store/mul/add.
///
/// # Safety
///
/// `load`/`store` dereference raw pointers to `LANES` consecutive `f64`s;
/// callers guarantee validity. Implementations may use `core::arch`
/// intrinsics that are undefined behaviour on CPUs without the matching
/// feature; instantiations are only reachable through the runtime-detected
/// tier dispatch.
trait SimdF64: Copy {
    /// Lanes per register.
    const LANES: usize;
    /// Broadcast one value to all lanes.
    unsafe fn splat(v: f64) -> Self;
    /// Unaligned load of `LANES` values.
    unsafe fn load(ptr: *const f64) -> Self;
    /// Unaligned store of `LANES` values.
    unsafe fn store(self, ptr: *mut f64);
    /// Lane-wise product.
    unsafe fn mul(self, other: Self) -> Self;
    /// Lane-wise sum.
    unsafe fn add(self, other: Self) -> Self;
}

/// Portable one-lane fallback.
#[derive(Clone, Copy)]
struct Scalar1(f64);

impl SimdF64 for Scalar1 {
    const LANES: usize = 1;
    #[inline(always)]
    unsafe fn splat(v: f64) -> Self {
        Scalar1(v)
    }
    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        Scalar1(*ptr)
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        *ptr = self.0;
    }
    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        Scalar1(self.0 * other.0)
    }
    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        Scalar1(self.0 + other.0)
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::SimdF64;
    use core::arch::x86_64::*;

    /// Two `f64` lanes in an SSE2 register (x86-64 baseline).
    #[derive(Clone, Copy)]
    pub(super) struct Sse2(__m128d);

    impl SimdF64 for Sse2 {
        const LANES: usize = 2;
        #[inline(always)]
        unsafe fn splat(v: f64) -> Self {
            Sse2(_mm_set1_pd(v))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Sse2(_mm_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm_storeu_pd(ptr, self.0);
        }
        #[inline(always)]
        unsafe fn mul(self, other: Self) -> Self {
            Sse2(_mm_mul_pd(self.0, other.0))
        }
        #[inline(always)]
        unsafe fn add(self, other: Self) -> Self {
            Sse2(_mm_add_pd(self.0, other.0))
        }
    }

    /// Four `f64` lanes in an AVX register (guarded by AVX2 detection).
    #[derive(Clone, Copy)]
    pub(super) struct Avx2(__m256d);

    impl SimdF64 for Avx2 {
        const LANES: usize = 4;
        #[inline(always)]
        unsafe fn splat(v: f64) -> Self {
            Avx2(_mm256_set1_pd(v))
        }
        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Avx2(_mm256_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm256_storeu_pd(ptr, self.0);
        }
        #[inline(always)]
        unsafe fn mul(self, other: Self) -> Self {
            Avx2(_mm256_mul_pd(self.0, other.0))
        }
        #[inline(always)]
        unsafe fn add(self, other: Self) -> Self {
            Avx2(_mm256_add_pd(self.0, other.0))
        }
    }
}

// ---------------------------------------------------------------------------
// Level 1: direct row kernels (axpy-shaped, one output row at a time).
// ---------------------------------------------------------------------------

/// One output row of a product: `out_row[j] += Σ_kk a(kk) · b[kk·n + j]`,
/// where `a(kk)` is read from `a_base` with stride `a_stride`. Stride 1 is a
/// plain `A·B` row; stride `ka` with base `col` is row `col` of `Aᵀ·B`.
///
/// Four vector accumulators per column tile keep enough independent
/// add-chains in flight to cover FP latency, and each output element still
/// accumulates as one ascending-`kk` chain (broadcast-multiply, then add).
///
/// # Safety
///
/// `a_base` must be valid for `depth` strided reads, `b` for `depth * n`
/// reads, `out_row` for `n` reads and writes; intrinsics require the lane
/// type's CPU feature.
#[inline(always)]
unsafe fn row_kernel_v<V: SimdF64>(
    a_base: *const f64,
    a_stride: usize,
    depth: usize,
    b: *const f64,
    n: usize,
    out_row: *mut f64,
) {
    let lanes = V::LANES;
    let tile = 4 * lanes;
    let mut j = 0usize;
    while j + tile <= n {
        let mut acc0 = V::load(out_row.add(j));
        let mut acc1 = V::load(out_row.add(j + lanes));
        let mut acc2 = V::load(out_row.add(j + 2 * lanes));
        let mut acc3 = V::load(out_row.add(j + 3 * lanes));
        for kk in 0..depth {
            let av = V::splat(*a_base.add(kk * a_stride));
            let brow = b.add(kk * n + j);
            acc0 = acc0.add(av.mul(V::load(brow)));
            acc1 = acc1.add(av.mul(V::load(brow.add(lanes))));
            acc2 = acc2.add(av.mul(V::load(brow.add(2 * lanes))));
            acc3 = acc3.add(av.mul(V::load(brow.add(3 * lanes))));
        }
        acc0.store(out_row.add(j));
        acc1.store(out_row.add(j + lanes));
        acc2.store(out_row.add(j + 2 * lanes));
        acc3.store(out_row.add(j + 3 * lanes));
        j += tile;
    }
    while j + lanes <= n {
        let mut acc = V::load(out_row.add(j));
        for kk in 0..depth {
            let av = V::splat(*a_base.add(kk * a_stride));
            acc = acc.add(av.mul(V::load(b.add(kk * n + j))));
        }
        acc.store(out_row.add(j));
        j += lanes;
    }
    while j < n {
        let mut acc = *out_row.add(j);
        for kk in 0..depth {
            acc += *a_base.add(kk * a_stride) * *b.add(kk * n + j);
        }
        *out_row.add(j) = acc;
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn row_kernel_sse2(
    a_base: *const f64,
    a_stride: usize,
    depth: usize,
    b: *const f64,
    n: usize,
    out_row: *mut f64,
) {
    // SSE2 is in the x86-64 baseline: no `#[target_feature]` needed.
    row_kernel_v::<x86::Sse2>(a_base, a_stride, depth, b, n, out_row);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_kernel_avx2(
    a_base: *const f64,
    a_stride: usize,
    depth: usize,
    b: *const f64,
    n: usize,
    out_row: *mut f64,
) {
    row_kernel_v::<x86::Avx2>(a_base, a_stride, depth, b, n, out_row);
}

fn row_kernel_scalar(
    a_base: *const f64,
    a_stride: usize,
    depth: usize,
    b: *const f64,
    n: usize,
    out_row: *mut f64,
) {
    // SAFETY: caller contracts forwarded from `strided_row`.
    unsafe { row_kernel_v::<Scalar1>(a_base, a_stride, depth, b, n, out_row) }
}

/// Dispatch one strided row-kernel call through the active tier.
///
/// `a` supplies the `depth` inner-dimension coefficients starting at
/// `a_offset` with stride `a_stride`; `b` is the row-major right operand
/// with `n` columns and `depth` rows; `out_row` is accumulated in place.
#[inline]
pub(crate) fn strided_row(
    a: &[f64],
    a_offset: usize,
    a_stride: usize,
    depth: usize,
    b: &[f64],
    n: usize,
    out_row: &mut [f64],
) {
    debug_assert_eq!(out_row.len(), n);
    debug_assert!(depth == 0 || a_offset + (depth - 1) * a_stride < a.len());
    debug_assert!(b.len() >= depth * n);
    let a_base = unsafe { a.as_ptr().add(a_offset) };
    let bp = b.as_ptr();
    let op = out_row.as_mut_ptr();
    match active_tier() {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 => unsafe { row_kernel_avx2(a_base, a_stride, depth, bp, n, op) },
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => unsafe { row_kernel_sse2(a_base, a_stride, depth, bp, n, op) },
        _ => row_kernel_scalar(a_base, a_stride, depth, bp, n, op),
    }
}

// ---------------------------------------------------------------------------
// Level 2: cache-blocked panel packing.
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread `A` pack buffer (`MR`-row panels), grow-only.
    static PACK_A: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread `B` pack buffer (`NR`-column panels), grow-only.
    static PACK_B: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` (row-major, leading dimension `ldb`) into
/// `NR`-column panels: element `(kk, j)` of panel `jp` lands at
/// `(jp·kc + kk)·nr + j`. Columns past `nc` are zero-padded so the
/// microkernel always sees full panels (padded lanes never reach valid
/// output elements).
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f64],
    ldb: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    buf: &mut Vec<f64>,
) {
    let panels = nc.div_ceil(nr);
    buf.clear();
    buf.resize(panels * kc * nr, 0.0);
    for jp in 0..panels {
        let cols = nr.min(nc - jp * nr);
        let dst_panel = jp * kc * nr;
        for kk in 0..kc {
            let src = (pc + kk) * ldb + jc + jp * nr;
            let dst = dst_panel + kk * nr;
            buf[dst..dst + cols].copy_from_slice(&b[src..src + cols]);
        }
    }
}

/// Pack `A[ic..ic+mc, pc..pc+kc]` (row-major, leading dimension `lda`) into
/// `MR`-row panels: element `(r, kk)` of panel `ip` lands at
/// `(ip·kc + kk)·MR + r`. Rows past `mc` are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_a(a: &[f64], lda: usize, ic: usize, mc: usize, pc: usize, kc: usize, buf: &mut Vec<f64>) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    for ip in 0..panels {
        let rows = MR.min(mc - ip * MR);
        let dst_panel = ip * kc * MR;
        for r in 0..rows {
            let src_row = (ic + ip * MR + r) * lda + pc;
            for kk in 0..kc {
                buf[dst_panel + kk * MR + r] = a[src_row + kk];
            }
        }
    }
}

/// Full `MR × 2·LANES` register-tile microkernel over one packed stripe:
/// loads the output tile, accumulates `kc` ascending-order terms per element
/// (broadcast `A`, two `B` vectors, multiply then add), stores the tile back.
///
/// # Safety
///
/// `ap`/`bp` must point at full packed panels of depth `kc`; `c` must be
/// valid for an `MR × 2·LANES` tile with row stride `ldc`; lane intrinsics
/// require the matching CPU feature.
#[inline(always)]
unsafe fn micro_full<V: SimdF64>(
    kc: usize,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
) {
    let lanes = V::LANES;
    let nr = 2 * lanes;
    let mut acc0 = [V::splat(0.0); MR];
    let mut acc1 = [V::splat(0.0); MR];
    for r in 0..MR {
        acc0[r] = V::load(c.add(r * ldc));
        acc1[r] = V::load(c.add(r * ldc + lanes));
    }
    for kk in 0..kc {
        let b0 = V::load(bp.add(kk * nr));
        let b1 = V::load(bp.add(kk * nr + lanes));
        for r in 0..MR {
            let av = V::splat(*ap.add(kk * MR + r));
            acc0[r] = acc0[r].add(av.mul(b0));
            acc1[r] = acc1[r].add(av.mul(b1));
        }
    }
    for r in 0..MR {
        acc0[r].store(c.add(r * ldc));
        acc1[r].store(c.add(r * ldc + lanes));
    }
}

/// Scalar edge-tile kernel for partial `MR`/`NR` extents, reading the same
/// packed panels. Identical ascending-`kk` single-chain accumulation, so
/// edge tiles match full tiles bit-for-bit.
///
/// # Safety
///
/// Same panel/output validity contracts as [`micro_full`], restricted to
/// `mr_eff` rows and `nr_eff` columns.
#[allow(clippy::too_many_arguments)]
unsafe fn micro_edge(
    kc: usize,
    ap: *const f64,
    bp: *const f64,
    nr: usize,
    c: *mut f64,
    ldc: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for r in 0..mr_eff {
        for j in 0..nr_eff {
            let mut acc = *c.add(r * ldc + j);
            for kk in 0..kc {
                acc += *ap.add(kk * MR + r) * *bp.add(kk * nr + j);
            }
            *c.add(r * ldc + j) = acc;
        }
    }
}

/// Sweep one packed `A` block against one packed `B` stripe: all row panels
/// × all column panels, full tiles through [`micro_full`], edges through
/// [`micro_edge`].
///
/// # Safety
///
/// `c` must point at the `(ic, jc)` corner of a buffer with row stride
/// `ldc` covering `mc × nc` writable elements; panels must be packed for
/// this block; lane intrinsics require the matching CPU feature.
#[inline(always)]
unsafe fn block_kernel_v<V: SimdF64>(
    apack: &[f64],
    bpack: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    c: *mut f64,
    ldc: usize,
) {
    let nr = 2 * V::LANES;
    let j_panels = nc.div_ceil(nr);
    let i_panels = mc.div_ceil(MR);
    for jp in 0..j_panels {
        let bpanel = bpack.as_ptr().add(jp * kc * nr);
        let nr_eff = nr.min(nc - jp * nr);
        for ip in 0..i_panels {
            let apanel = apack.as_ptr().add(ip * kc * MR);
            let mr_eff = MR.min(mc - ip * MR);
            let ctile = c.add(ip * MR * ldc + jp * nr);
            if mr_eff == MR && nr_eff == nr {
                micro_full::<V>(kc, apanel, bpanel, ctile, ldc);
            } else {
                micro_edge(kc, apanel, bpanel, nr, ctile, ldc, mr_eff, nr_eff);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn block_kernel_sse2(
    apack: &[f64],
    bpack: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    c: *mut f64,
    ldc: usize,
) {
    block_kernel_v::<x86::Sse2>(apack, bpack, kc, mc, nc, c, ldc);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_kernel_avx2(
    apack: &[f64],
    bpack: &[f64],
    kc: usize,
    mc: usize,
    nc: usize,
    c: *mut f64,
    ldc: usize,
) {
    block_kernel_v::<x86::Avx2>(apack, bpack, kc, mc, nc, c, ldc);
}

/// Pack one `A` block into the thread-local buffer and run the tier's block
/// kernel over the packed `B` stripe.
#[allow(clippy::too_many_arguments)]
fn process_row_block(
    tier: SimdTier,
    a: &[f64],
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    bpack: &[f64],
    nc: usize,
    c_block: &mut [f64],
    ldc: usize,
    c_col: usize,
) {
    PACK_A.with(|buf| {
        let mut apack = buf.borrow_mut();
        pack_a(a, lda, ic, mc, pc, kc, &mut apack);
        let c = unsafe { c_block.as_mut_ptr().add(c_col) };
        // SAFETY: `c` spans `mc` rows of stride `ldc` inside `c_block`, the
        // panels were packed for exactly this block, and the tier was
        // runtime-detected (or clamped to) a supported feature set.
        match tier {
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { block_kernel_avx2(&apack, bpack, kc, mc, nc, c, ldc) },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => unsafe { block_kernel_sse2(&apack, bpack, kc, mc, nc, c, ldc) },
            _ => unsafe { block_kernel_v::<Scalar1>(&apack, bpack, kc, mc, nc, c, ldc) },
        }
    });
}

/// Cache-blocked packed matmul: accumulate `A (m×k) · B (k×n)` into `out`
/// (row-major `m×n`, pre-seeded with zeros or a broadcast bias). Row blocks
/// fan out over the rayon pool when `parallel` is set; every output element
/// is produced by exactly one task with a fixed accumulation chain, so the
/// parallel and sequential paths are byte-identical.
pub(crate) fn packed_matmul(
    a: &[f64],
    m: usize,
    k: usize,
    b: &[f64],
    n: usize,
    out: &mut [f64],
    parallel: bool,
) {
    use rayon::prelude::*;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let tier = active_tier();
    let nr = 2 * tier.lanes();
    // Row-block height: `MC` alone would hand a single block (and therefore
    // a single thread) any product with `m <= MC`, so when parallel, shrink
    // blocks until every executor gets a few to steal. The height is derived
    // only from the shape and thread count — never from runtime load — and
    // each output element keeps its fixed accumulation chain, so results
    // stay byte-identical whatever the block size.
    let block_rows = if parallel {
        MC.min(
            m.div_ceil(4 * rayon::current_num_threads())
                .next_multiple_of(MR),
        )
    } else {
        MC
    };
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            PACK_B.with(|buf| {
                let mut bpack_ref = buf.borrow_mut();
                pack_b(b, n, pc, kc, jc, nc, nr, &mut bpack_ref);
                let bpack: &[f64] = &bpack_ref;
                if parallel {
                    out.par_chunks_mut(block_rows * n)
                        .enumerate()
                        .for_each(|(blk, c_block)| {
                            let ic = blk * block_rows;
                            let mc = block_rows.min(m - ic);
                            process_row_block(
                                tier, a, k, ic, mc, pc, kc, bpack, nc, c_block, n, jc,
                            );
                        });
                } else {
                    for (blk, c_block) in out.chunks_mut(block_rows * n).enumerate() {
                        let ic = blk * block_rows;
                        let mc = block_rows.min(m - ic);
                        process_row_block(tier, a, k, ic, mc, pc, kc, bpack, nc, c_block, n, jc);
                    }
                }
            });
            pc += kc;
        }
        jc += nc;
    }
}
