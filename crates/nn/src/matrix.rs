//! Dense row-major `f64` matrix with the operations the MLPs need.
//!
//! The matmul products run on the two-level kernel architecture in
//! [`crate::kernels`]: explicitly vectorized microkernels (scalar / SSE2 /
//! AVX2 `core::arch` lanes, selected once per process by
//! [`crate::simd::active_tier`]) behind a shape split — small operands go
//! through direct axpy-shaped row kernels, while shapes whose `B` operand
//! overflows the L1-resident tile go through a cache-blocked driver that
//! packs `A` and `B` into register-tile panels held in thread-local,
//! grow-only buffers. Dedicated [`Matrix::matmul_at_b`] /
//! [`Matrix::matmul_a_bt`] variants compute `Aᵀ·B` and `A·Bᵀ` directly so
//! the backward pass never materializes a transposed copy, and `_into`
//! variants reuse caller-owned buffers so the training loop performs no
//! per-step allocations on the hot path.
//!
//! Every kernel — any tier, packed or direct — accumulates each output
//! element along the inner dimension in ascending index order with a single
//! accumulation chain (multiply then add, never FMA), so the parallel and
//! sequential paths, every SIMD tier, and the `_at_b`/`_a_bt` shortcuts
//! versus their transpose-then-multiply equivalents produce byte-identical
//! results on finite inputs free of signed zeros (the branchless kernels
//! add `0 · b` terms the scalar reference skips, which only diverges when
//! `b` is infinite or NaN, or through `-0.0` bookkeeping). Work is
//! parallelised over output rows (or packed row blocks) with rayon once it
//! is large enough to amortise handing chunks to the pool.
//!
//! The seed-state scalar kernels are preserved in [`reference`] as the
//! oracle for equivalence tests, alongside a frozen copy of the PR 2
//! register-tiled kernel ([`reference::tiled_matmul`]) that anchors the
//! `perf_report` speedup trajectory for the SIMD/packed kernels.

use crate::kernels;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Work threshold (output cells × inner dimension) above which matmul runs
/// in parallel (shared with the `f32` inference matrix in
/// [`crate::matrix32`]).
pub(crate) const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Square block edge for the cache-blocked transpose.
const TRANSPOSE_BLOCK: usize = 32;

/// Dense row-major matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major vector. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Matrix with i.i.d. `N(0, std²)` entries.
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Self {
        let normal = Normal::new(0.0, std).expect("std must be finite and positive");
        let data = (0..rows * cols).map(|_| normal.sample(rng)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshape in place to `rows × cols`, zero-filling the contents and
    /// reusing the existing allocation when it is large enough.
    pub(crate) fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape to `rows × cols` of zeros, reusing the allocation — the
    /// public face of the internal reset for batch-assembly call sites that
    /// build a buffer with [`Matrix::paste`].
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.reset(rows, cols);
    }

    /// Overwrite this matrix with `src`, reusing the existing allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Select a subset of rows by index (indices may repeat).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.take_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::take_rows`] into a caller-owned buffer, so batch assembly in
    /// a training loop reuses one allocation across steps.
    pub fn take_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.rows = indices.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &src in indices {
            out.data.extend_from_slice(self.row(src));
        }
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.hconcat_into(other, &mut out);
        out
    }

    /// [`Matrix::hconcat`] into a caller-owned buffer.
    pub fn hconcat_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "row count mismatch in hconcat");
        out.reset(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Copy `src` into this matrix with its top-left corner at `(r0, c0)`,
    /// so batch assembly (e.g. stacking real and fake halves of a fused
    /// discriminator batch) writes straight into a persistent buffer instead
    /// of concatenating fresh matrices.
    pub fn paste(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "paste of {}x{} at ({r0},{c0}) exceeds {}x{}",
            src.rows,
            src.cols,
            self.rows,
            self.cols
        );
        for r in 0..src.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + src.cols].copy_from_slice(src.row(r));
        }
    }

    /// Slice a contiguous range of rows (`start..end`), the inverse of
    /// [`Matrix::paste`]-stacking: a batched forward pass over stacked
    /// per-request blocks splits its output back out with this.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Slice a contiguous range of columns.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of range"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Cache-blocked transpose: both source and destination are walked in
    /// `32×32` tiles so each tile's rows stay cache-resident while its
    /// columns are scattered, instead of striding the whole destination per
    /// source row.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-owned buffer.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TRANSPOSE_BLOCK) {
            let r1 = (r0 + TRANSPOSE_BLOCK).min(self.rows);
            for c0 in (0..self.cols).step_by(TRANSPOSE_BLOCK) {
                let c1 = (c0 + TRANSPOSE_BLOCK).min(self.cols);
                for r in r0..r1 {
                    for c in c0..c1 {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
    }

    /// Run `kernel` over every output row, in parallel above the work
    /// threshold and sequentially (same kernel, same chunk order) below it.
    fn for_each_out_row(out: &mut Matrix, work: usize, kernel: impl Fn(usize, &mut [f64]) + Sync) {
        let n = out.cols.max(1);
        if work >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            out.data
                .chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        }
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned buffer.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows, other.cols);
        self.accumulate_product(other, out);
    }

    /// Accumulate `self × other` on top of whatever `out` already holds
    /// (zeros or a broadcast bias), choosing the packed driver for large
    /// shapes and the direct row kernels otherwise.
    fn accumulate_product(&self, other: &Matrix, out: &mut Matrix) {
        let (m, n, k) = (self.rows, other.cols, self.cols);
        let work = m * n * k;
        if kernels::use_packed(m, k, n) {
            kernels::packed_matmul(
                &self.data,
                m,
                k,
                &other.data,
                n,
                &mut out.data,
                work >= PAR_THRESHOLD,
            );
        } else {
            Self::for_each_out_row(out, work, |r, out_row| {
                kernels::strided_row(&self.data, r * k, 1, k, &other.data, n, out_row);
            });
        }
    }

    /// Bench/test hook: run the cache-blocked packed driver unconditionally
    /// with an explicit `parallel` flag, bypassing the [`kernels::use_packed`]
    /// shape split and the work threshold. This is how `perf_report` measures
    /// the multi-threaded packed legs against their own single-threaded tier
    /// within one process; it is not part of the stable API.
    #[doc(hidden)]
    pub fn matmul_packed_with(&self, other: &Matrix, parallel: bool) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::packed_matmul(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            parallel,
        );
        out
    }

    /// Sequential matrix product through the direct (unpacked) row kernels —
    /// the oracle for the parallel- and packed-determinism tests and the
    /// `perf_report` baselines.
    pub fn matmul_seq(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let (n, k) = (other.cols, self.cols);
        for (r, out_row) in out.data.chunks_mut(n.max(1)).enumerate() {
            kernels::strided_row(&self.data, r * k, 1, k, &other.data, n, out_row);
        }
        out
    }

    /// Fused affine map `self × other + bias` (bias broadcast over rows): the
    /// output is seeded with the bias and the product accumulates on top, so
    /// no separate broadcast pass or intermediate allocation is needed.
    pub fn matmul_bias(&self, other: &Matrix, bias: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_bias_into(other, bias, &mut out);
        out
    }

    /// [`Matrix::matmul_bias`] into a caller-owned buffer.
    pub fn matmul_bias_into(&self, other: &Matrix, bias: &[f64], out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(bias.len(), other.cols, "bias width mismatch");
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        for _ in 0..self.rows {
            out.data.extend_from_slice(bias);
        }
        self.accumulate_product(other, out);
    }

    /// Fully fused affine + activation: `act(self × other + bias)` into a
    /// caller-owned buffer. On the direct path the activation is applied to
    /// each output row in the same pass that computes it, while the row is
    /// still cache-hot; the packed path applies it in one trailing sweep.
    /// The affine part is bit-identical to [`Matrix::matmul_bias_into`].
    pub fn matmul_bias_act_into(
        &self,
        other: &Matrix,
        bias: &[f64],
        act: impl Fn(f64) -> f64 + Sync,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(bias.len(), other.cols, "bias width mismatch");
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        for _ in 0..self.rows {
            out.data.extend_from_slice(bias);
        }
        let (m, n, k) = (self.rows, other.cols, self.cols);
        if kernels::use_packed(m, k, n) {
            self.accumulate_product(other, out);
            for v in &mut out.data {
                *v = act(*v);
            }
        } else {
            let work = m * n * k;
            Self::for_each_out_row(out, work, |r, out_row| {
                kernels::strided_row(&self.data, r * k, 1, k, &other.data, n, out_row);
                for v in out_row.iter_mut() {
                    *v = act(*v);
                }
            });
        }
    }

    /// `selfᵀ × other` computed directly from the untransposed operands
    /// (`self` is `m×k`, `other` is `m×p`, result is `k×p`). Equivalent to
    /// `self.transpose().matmul(other)` without materializing the transpose.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_at_b`] into a caller-owned buffer.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_at_b dimension mismatch: {}x{} ᵀ× {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.cols, other.cols);
        let (ka, p, m) = (self.cols, other.cols, self.rows);
        let work = ka * p * m;
        Self::for_each_out_row(out, work, |i, out_row| {
            kernels::strided_row(&self.data, i, ka, m, &other.data, p, out_row);
        });
    }

    /// `self × otherᵀ` (`self` is `m×k`, `other` is `p×k`, result `m×p`).
    ///
    /// Implemented as a blocked transpose of `other` feeding the blocked
    /// `A·B` kernel, because a direct dot-product kernel is latency-bound:
    /// each output element's fixed ascending-order accumulation chain
    /// serialises on floating-point add latency, whereas the axpy-shaped
    /// `A·B` kernel vectorises across output columns. The transpose is
    /// `O(p·k)` against the product's `O(m·p·k)` and is bit-equivalent to
    /// `self.matmul(&other.transpose())` by construction. Hot loops that
    /// need scratch reuse call [`Matrix::matmul_a_bt_scratch`].
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut scratch = Matrix::default();
        self.matmul_a_bt_scratch(other, &mut scratch)
    }

    /// [`Matrix::matmul_a_bt`] with a caller-owned buffer for the transposed
    /// right operand, so per-step training calls allocate nothing but the
    /// result.
    pub fn matmul_a_bt_scratch(&self, other: &Matrix, scratch: &mut Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_a_bt dimension mismatch: {}x{} ×ᵀ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        other.transpose_into(scratch);
        self.matmul(scratch)
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise map into a caller-owned buffer, reusing its allocation.
    pub fn map_into(&self, f: impl Fn(f64) -> f64, out: &mut Matrix) {
        out.rows = self.rows;
        out.cols = self.cols;
        out.data.clear();
        out.data.extend(self.data.iter().map(|&v| f(v)));
    }

    /// Element-wise map in place.
    pub fn map_assign(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise binary operation with another matrix of the same shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.rows, other.rows, "zip shape mismatch");
        assert_eq!(self.cols, other.cols, "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise binary operation in place: `self[i] = f(self[i], other[i])`.
    pub fn zip_assign(&mut self, other: &Matrix, f: impl Fn(f64, f64) -> f64) {
        assert_eq!(self.rows, other.rows, "zip shape mismatch");
        assert_eq!(self.cols, other.cols, "zip shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise addition in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, |a, b| a + b);
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Scalar multiplication in place.
    pub fn scale_assign(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Add a row vector (1 × cols) to every row.
    pub fn add_row_vector(&self, bias: &[f64]) -> Matrix {
        let mut out = self.clone();
        out.add_row_vector_assign(bias);
        out
    }

    /// Add a row vector (1 × cols) to every row, in place.
    pub fn add_row_vector_assign(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        for row in self.data.chunks_mut(self.cols.max(1)) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }

    /// Column-wise sum, producing a vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] into a caller-owned buffer.
    pub fn sum_rows_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Frozen baseline kernels: the seed-state scalar kernels kept verbatim as
/// (a) the oracle the property tests compare the dispatched kernels against
/// and (b) the anchor of the `perf_report` speedup trajectory, plus a
/// verbatim copy of the PR 2 register-tiled kernel ([`tiled_matmul`]) so the
/// SIMD/packed kernels of this round are measured against their immediate
/// predecessor rather than only the seed. Nothing here may be optimised:
/// any change silently drags every recorded speedup along with it.
pub mod reference {
    use super::Matrix;

    /// Register-tile width of the frozen PR 2 kernel.
    const REG_TILE: usize = 8;

    /// The PR 2 register-tiled, branchless row kernel, frozen verbatim: one
    /// 8-wide accumulator tile per output segment, ascending-`k`
    /// broadcast-multiply-accumulate.
    #[inline]
    fn tiled_row_kernel(a_row: &[f64], b: &[f64], n: usize, out_row: &mut [f64]) {
        let mut j0 = 0;
        while j0 + REG_TILE <= n {
            let mut acc = [0.0f64; REG_TILE];
            acc.copy_from_slice(&out_row[j0..j0 + REG_TILE]);
            for (kk, &a) in a_row.iter().enumerate() {
                let b_tile = &b[kk * n + j0..kk * n + j0 + REG_TILE];
                for (t, o) in acc.iter_mut().enumerate() {
                    *o += a * b_tile[t];
                }
            }
            out_row[j0..j0 + REG_TILE].copy_from_slice(&acc);
            j0 += REG_TILE;
        }
        if j0 < n {
            let rem = n - j0;
            let mut acc = [0.0f64; REG_TILE];
            acc[..rem].copy_from_slice(&out_row[j0..]);
            for (kk, &a) in a_row.iter().enumerate() {
                let b_tile = &b[kk * n + j0..kk * n + n];
                for (t, &bv) in b_tile.iter().enumerate() {
                    acc[t] += a * bv;
                }
            }
            out_row[j0..].copy_from_slice(&acc[..rem]);
        }
    }

    /// The PR 2 register-tiled matmul (sequential; on the 1-core CI
    /// container the parallel path degenerated to this), frozen as the
    /// baseline the SIMD-dispatched and packed kernels are measured against
    /// in `perf_report` and `BENCH_nn.json`.
    pub fn tiled_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let (n, k) = (b.cols(), a.cols());
        for (r, out_row) in out.data.chunks_mut(n.max(1)).enumerate() {
            tiled_row_kernel(&a.data()[r * k..(r + 1) * k], b.data(), n, out_row);
        }
        out
    }

    /// Naive single-row-accumulate matmul (the seed kernel).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let n = b.cols();
        let k = a.cols();
        for r in 0..a.rows() {
            let a_row = &a.data()[r * k..(r + 1) * k];
            let out_row = &mut out.data[r * n..(r + 1) * n];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.data()[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Strided-scatter transpose (the seed kernel).
    pub fn transpose(a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), a.rows());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                out.data[c * a.rows() + r] = a.data()[r * a.cols() + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The byte-for-byte pins against the frozen scalar reference only hold
    /// on the bit-exact tiers; under a forced `SURROGATE_SIMD=fma`/`avx512`
    /// run those contracts are covered by the tolerance oracle in
    /// `tests/simd_kernels.rs` instead.
    fn bit_exact_tier() -> bool {
        let exact = crate::simd::active_tier().bit_exact();
        if !exact {
            eprintln!("skipping byte-identity pin: fused tier active");
        }
        exact
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::randn(7, 5, 1.0, &mut rng);
        let mut eye = Matrix::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        // Big enough to trip the parallel path; the parallel product must be
        // byte-identical to the sequential kernel, not merely close.
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::randn(80, 70, 1.0, &mut rng);
        let b = Matrix::randn(70, 90, 1.0, &mut rng);
        const { assert!(80 * 70 * 90 >= super::PAR_THRESHOLD) }; // covers the parallel path
        let par = a.matmul(&b);
        let seq = a.matmul_seq(&b);
        assert_eq!(par.rows(), 80);
        assert_eq!(par.cols(), 90);
        assert_eq!(
            par, seq,
            "parallel and sequential products must be byte-identical"
        );
        // And both must agree exactly with the pre-PR reference kernel.
        if bit_exact_tier() {
            assert_eq!(seq, reference::matmul(&a, &b));
        }
    }

    #[test]
    fn blocked_kernel_matches_reference_across_shapes() {
        // Odd shapes straddle every unroll/tile boundary: k ∈ {1..5, 127,
        // 128, 129} exercises the 4-wide remainder, n=513 exercises the
        // column-tile seam.
        if !bit_exact_tier() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 2, 5),
            (5, 4, 3),
            (7, 5, 9),
            (16, 127, 33),
            (9, 128, 17),
            (8, 129, 16),
            (2, 64, 513),
        ] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b),
                reference::matmul(&a, &b),
                "shape {m}x{k}x{n} diverged from the reference kernel"
            );
        }
    }

    #[test]
    fn matmul_at_b_matches_transpose_then_matmul() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, p) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 4),
            (5, 7, 3),
            (33, 9, 21),
            (65, 13, 5),
            (127, 6, 31),
        ] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(m, p, 1.0, &mut rng);
            assert_eq!(
                a.matmul_at_b(&b),
                a.transpose().matmul(&b),
                "Aᵀ·B shape {m}x{k} / {m}x{p} diverged"
            );
        }
    }

    #[test]
    fn matmul_a_bt_matches_matmul_of_transpose() {
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, k, p) in &[
            (1usize, 1usize, 1usize),
            (4, 3, 2),
            (7, 5, 9),
            (21, 33, 9),
            (5, 65, 13),
            (31, 127, 6),
        ] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(p, k, 1.0, &mut rng);
            assert_eq!(
                a.matmul_a_bt(&b),
                a.matmul(&b.transpose()),
                "A·Bᵀ shape {m}x{k} / {p}x{k} diverged"
            );
        }
    }

    #[test]
    fn matmul_bias_matches_matmul_plus_broadcast() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (4, 5, 3), (9, 127, 33)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let bias: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 1.0).collect();
            // The fused kernel seeds the output with the bias and accumulates
            // the product on top, so the rounding order differs from
            // product-then-broadcast; compare to machine precision instead of
            // bit equality.
            let fused = a.matmul_bias(&b, &bias);
            let unfused = a.matmul(&b).add_row_vector(&bias);
            for (x, y) in fused.data().iter().zip(unfused.data()) {
                assert!(
                    (x - y).abs() <= 1e-12 * (1.0 + y.abs()),
                    "fused affine shape {m}x{k}x{n} diverged: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let mut rng = StdRng::seed_from_u64(19);
        let a = Matrix::randn(6, 5, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        // Deliberately wrong-shaped scratch: the _into call must fix it up.
        let mut out = Matrix::randn(2, 9, 1.0, &mut rng);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let c = Matrix::randn(6, 3, 1.0, &mut rng);
        a.matmul_at_b_into(&c, &mut out);
        assert_eq!(out, a.transpose().matmul(&c));
        let d = Matrix::randn(7, 5, 1.0, &mut rng);
        let mut scratch = Matrix::randn(3, 3, 1.0, &mut rng);
        assert_eq!(
            a.matmul_a_bt_scratch(&d, &mut scratch),
            a.matmul(&d.transpose())
        );
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn packed_path_is_bit_identical_to_reference() {
        // 130x520x130 comfortably crosses the packed threshold (k·n = 67600)
        // and straddles the MR/NR/KC/MC panel seams; the packed driver must
        // still be byte-identical to the seed reference on finite data.
        if !bit_exact_tier() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(47);
        let a = Matrix::randn(130, 520, 1.0, &mut rng);
        let b = Matrix::randn(520, 130, 1.0, &mut rng);
        assert!(super::kernels::use_packed(130, 520, 130));
        assert_eq!(a.matmul(&b), reference::matmul(&a, &b));
        assert_eq!(a.matmul(&b), reference::tiled_matmul(&a, &b));
        assert_eq!(a.matmul(&b), a.matmul_seq(&b));
    }

    #[test]
    fn fused_affine_activation_matches_composition() {
        let mut rng = StdRng::seed_from_u64(53);
        for &(m, k, n) in &[(5usize, 7usize, 9usize), (64, 80, 160)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let bias: Vec<f64> = (0..n).map(|i| i as f64 * 0.1 - 0.5).collect();
            let mut fused = Matrix::randn(2, 2, 1.0, &mut rng);
            a.matmul_bias_act_into(&b, &bias, |v| v.max(0.0), &mut fused);
            let unfused = a.matmul_bias(&b, &bias).map(|v| v.max(0.0));
            assert_eq!(fused, unfused, "fused act shape {m}x{k}x{n} diverged");
        }
    }

    #[test]
    fn paste_writes_blocks_in_place() {
        let mut out = Matrix::zeros(4, 5);
        let top = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bottom = Matrix::from_rows(&[vec![5.0, 6.0, 7.0]]);
        out.paste(0, 1, &top);
        out.paste(3, 2, &bottom);
        assert_eq!(out.row(0), &[0.0, 1.0, 2.0, 0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 3.0, 4.0, 0.0, 0.0]);
        assert_eq!(out.row(3), &[0.0, 0.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn paste_out_of_bounds_panics() {
        let mut out = Matrix::zeros(2, 2);
        let src = Matrix::zeros(2, 2);
        out.paste(1, 0, &src);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_at_b dimension mismatch")]
    fn matmul_at_b_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let _ = a.matmul_at_b(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_a_bt dimension mismatch")]
    fn matmul_a_bt_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let _ = a.matmul_a_bt(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(4, 9, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(5, 2), a.get(2, 5));
    }

    #[test]
    fn blocked_transpose_matches_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, n) in &[
            (1usize, 1usize),
            (31, 33),
            (32, 32),
            (33, 31),
            (100, 7),
            (7, 100),
        ] {
            let a = Matrix::randn(m, n, 1.0, &mut rng);
            assert_eq!(
                a.transpose(),
                reference::transpose(&a),
                "transpose {m}x{n} diverged"
            );
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.scale(0.5).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let mut rng = StdRng::seed_from_u64(29);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let b = Matrix::randn(5, 7, 1.0, &mut rng);
        let bias: Vec<f64> = (0..7).map(|i| i as f64).collect();

        let mut x = a.clone();
        x.add_assign(&b);
        assert_eq!(x, a.add(&b));

        let mut x = a.clone();
        x.scale_assign(0.3);
        assert_eq!(x, a.scale(0.3));

        let mut x = a.clone();
        x.zip_assign(&b, |u, v| u * v - 1.0);
        assert_eq!(x, a.zip(&b, |u, v| u * v - 1.0));

        let mut x = a.clone();
        x.map_assign(|v| v.tanh());
        assert_eq!(x, a.map(|v| v.tanh()));

        let mut x = a.clone();
        x.add_row_vector_assign(&bias);
        assert_eq!(x, a.add_row_vector(&bias));
    }

    #[test]
    fn copy_from_reuses_and_matches() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let mut buf = Matrix::zeros(9, 2);
        buf.copy_from(&a);
        assert_eq!(buf, a);
    }

    #[test]
    fn bias_and_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let with_bias = a.add_row_vector(&[10.0, 20.0]);
        assert_eq!(with_bias.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert!((a.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_selection_and_concat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let sub = a.take_rows(&[2, 0]);
        assert_eq!(sub.data(), &[5.0, 6.0, 1.0, 2.0]);
        let mut buf = Matrix::zeros(1, 1);
        a.take_rows_into(&[1, 1, 0], &mut buf);
        assert_eq!(buf.data(), &[3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
        let b = Matrix::from_rows(&[vec![7.0], vec![8.0], vec![9.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.row(1), &[3.0, 4.0, 8.0]);
        let cols = cat.slice_cols(1, 3);
        assert_eq!(cols.row(0), &[2.0, 7.0]);
    }

    #[test]
    fn randn_is_seeded() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(
            Matrix::randn(3, 3, 1.0, &mut r1),
            Matrix::randn(3, 3, 1.0, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
