//! Dense row-major `f64` matrix with the handful of operations the MLPs need.
//!
//! The matmul kernel is parallelised over output rows with rayon once the
//! work is large enough to amortise the fork/join overhead; below that it
//! stays sequential, so tiny test-sized problems do not pay for threading.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Work threshold (output cells × inner dimension) above which matmul runs
/// in parallel.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major vector. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Matrix with i.i.d. `N(0, std²)` entries.
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Self {
        let normal = Normal::new(0.0, std).expect("std must be finite and positive");
        let data = (0..rows * cols).map(|_| normal.sample(rng)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Select a subset of rows by index (indices may repeat).
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row count mismatch in hconcat");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Slice a contiguous range of columns.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols,
            "column slice out of range"
        );
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let work = self.rows * other.cols * self.cols;
        let n = other.cols;
        let k = self.cols;

        let kernel = |(r, out_row): (usize, &mut [f64])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };

        if work >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel((r, out_row)));
        } else {
            out.data
                .chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel((r, out_row)));
        }
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise binary operation with another matrix of the same shape.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.rows, other.rows, "zip shape mismatch");
        assert_eq!(self.cols, other.cols, "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Add a row vector (1 × cols) to every row.
    pub fn add_row_vector(&self, bias: &[f64]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        out
    }

    /// Column-wise sum, producing a vector of length `cols`.
    pub fn sum_rows(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::randn(7, 5, 1.0, &mut rng);
        let mut eye = Matrix::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_parallel_matches_sequential_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        // Big enough to trip the parallel path.
        let a = Matrix::randn(80, 70, 1.0, &mut rng);
        let b = Matrix::randn(70, 90, 1.0, &mut rng);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 80);
        assert_eq!(c.cols(), 90);
        // Cross-check one element against a manual dot product.
        let manual: f64 = (0..70).map(|k| a.get(3, k) * b.get(k, 11)).sum();
        assert!((c.get(3, 11) - manual).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(4, 9, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(5, 2), a.get(2, 5));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).data(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).data(), &[-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul(&b).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.scale(0.5).data(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn bias_and_sums() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let with_bias = a.add_row_vector(&[10.0, 20.0]);
        assert_eq!(with_bias.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows(), vec![4.0, 6.0]);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert!((a.frobenius_norm() - 30f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_selection_and_concat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let sub = a.take_rows(&[2, 0]);
        assert_eq!(sub.data(), &[5.0, 6.0, 1.0, 2.0]);
        let b = Matrix::from_rows(&[vec![7.0], vec![8.0], vec![9.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.cols(), 3);
        assert_eq!(cat.row(1), &[3.0, 4.0, 8.0]);
        let cols = cat.slice_cols(1, 3);
        assert_eq!(cols.row(0), &[2.0, 7.0]);
    }

    #[test]
    fn randn_is_seeded() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(
            Matrix::randn(3, 3, 1.0, &mut r1),
            Matrix::randn(3, 3, 1.0, &mut r2)
        );
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
