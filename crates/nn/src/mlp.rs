//! Composable feed-forward networks (multi-layer perceptrons), plus the
//! forward-only `f32` mirror ([`Mlp32`]) the sampling paths run on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Layer, LinearLayer, LinearLayer32};
use crate::matrix::Matrix;
use crate::matrix32::Matrix32;
use crate::optim::Optimizer;

/// Architecture description of an MLP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input width.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a single linear map).
    pub hidden: Vec<usize>,
    /// Output width.
    pub output_dim: usize,
    /// Activation after every hidden layer.
    pub hidden_activation: Activation,
    /// Activation after the output layer (often [`Activation::Identity`]).
    pub output_activation: Activation,
}

impl MlpConfig {
    /// Convenience constructor with ReLU hidden layers and a linear output.
    pub fn relu(input_dim: usize, hidden: Vec<usize>, output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden,
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
        }
    }
}

/// A stack of [`LinearLayer`]s trained with manual backpropagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<LinearLayer>,
    /// Intermediate activation buffers reused by [`Mlp::forward_into`] /
    /// [`Mlp::forward`] across steps (one per hidden boundary).
    #[serde(skip)]
    scratch_acts: Vec<Matrix>,
}

impl Mlp {
    /// Build the network described by `config`.
    pub fn new<R: Rng>(config: &MlpConfig, rng: &mut R) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.output_dim);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let activation = if i + 2 == dims.len() {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(LinearLayer::new(dims[i], dims[i + 1], activation, rng));
        }
        Self {
            layers,
            scratch_acts: Vec::new(),
        }
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[LinearLayer] {
        &self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, LinearLayer::in_dim)
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, LinearLayer::out_dim)
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Layer::n_params).sum()
    }

    /// Forward pass storing caches for a subsequent [`Mlp::backward`].
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.forward_into(input, &mut out);
        out
    }

    /// [`Mlp::forward`] into a caller-owned output buffer: intermediate
    /// activations land in persistent per-boundary scratch buffers and the
    /// final activation in `out`, so a training step that reuses `out`
    /// allocates nothing anywhere in the forward pass.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let n_layers = self.layers.len();
        if n_layers == 0 {
            out.copy_from(input);
            return;
        }
        self.scratch_acts
            .resize_with(n_layers.saturating_sub(1), Matrix::default);
        for i in 0..n_layers {
            match (i == 0, i == n_layers - 1) {
                (true, true) => self.layers[0].forward_into(input, out),
                (true, false) => self.layers[0].forward_into(input, &mut self.scratch_acts[0]),
                (false, true) => self.layers[i].forward_into(&self.scratch_acts[i - 1], out),
                (false, false) => {
                    let (prev, rest) = self.scratch_acts.split_at_mut(i);
                    self.layers[i].forward_into(&prev[i - 1], &mut rest[0]);
                }
            }
        }
    }

    /// Inference-only forward pass (no caches stored).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        let mut scratch = Matrix::default();
        self.infer_into(input, &mut out, &mut scratch);
        out
    }

    /// [`Mlp::infer`] ping-ponging between two caller-owned buffers, so a
    /// sampling or discriminator loop that reuses them allocates nothing.
    /// The result always lands in `out`; `scratch` holds a stale
    /// intermediate afterwards.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix, scratch: &mut Matrix) {
        let n_layers = self.layers.len();
        if n_layers == 0 {
            out.copy_from(input);
            return;
        }
        for (i, layer) in self.layers.iter().enumerate() {
            // Alternate buffers backwards from the last layer, which must
            // write `out`.
            let to_out = (n_layers - 1 - i).is_multiple_of(2);
            match (i == 0, to_out) {
                (true, true) => layer.infer_into(input, out),
                (true, false) => layer.infer_into(input, scratch),
                (false, true) => layer.infer_into(scratch, out),
                (false, false) => layer.infer_into(out, scratch),
            }
        }
    }

    /// Down-convert the fitted network to the `f32` inference tier — done
    /// **once** per fitted model, after which sampling runs entirely in
    /// single precision through [`Mlp32::infer_into`].
    pub fn to_f32(&self) -> Mlp32 {
        Mlp32 {
            layers: self.layers.iter().map(LinearLayer32::from_f64).collect(),
        }
    }

    /// Backward pass from dL/d(output); returns dL/d(input).
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return grad_output.clone();
        };
        let mut grad = last.backward(grad_output);
        for layer in layers {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Backward pass that accumulates every layer's parameter gradients but
    /// skips the first layer's `dL/d(input)` product — the widest matmul of
    /// the backward pass, whose result a discriminator update would discard.
    /// Gradients land in the same buffers as [`Mlp::backward`].
    pub fn backward_params_only(&mut self, grad_output: &Matrix) {
        let n_layers = self.layers.len();
        match n_layers {
            0 => {}
            1 => self.layers[0].backward_params(grad_output),
            _ => {
                let mut grad = self.layers[n_layers - 1].backward(grad_output);
                for idx in (1..n_layers - 1).rev() {
                    grad = self.layers[idx].backward(&grad);
                }
                self.layers[0].backward_params(&grad);
            }
        }
    }

    /// Apply one optimisation step using the gradients accumulated by the
    /// last backward pass. `param_group` namespaces the optimizer state so
    /// several networks can share one optimizer without clobbering moments.
    pub fn apply_gradients<O: Optimizer>(
        &mut self,
        optimizer: &mut O,
        param_group: usize,
        lr: f64,
    ) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let wkey = param_group * 1000 + i * 2;
            let bkey = wkey + 1;
            // Parameters and gradients live in disjoint fields, so the
            // optimizer can read the gradient slices directly — no copies.
            optimizer.update(
                wkey,
                layer.weights.data_mut(),
                layer.grad_weights.data(),
                lr,
            );
            optimizer.update(bkey, &mut layer.bias, &layer.grad_bias, lr);
        }
    }

    /// Every accumulated gradient slice (per layer: weights, then bias), in
    /// a fixed order — the single walk [`Mlp::grad_norm`] and
    /// [`Mlp::clip_gradients`] share.
    fn grad_slices(&self) -> impl Iterator<Item = &[f64]> {
        self.layers
            .iter()
            .flat_map(|layer| [layer.grad_weights.data(), layer.grad_bias.as_slice()])
    }

    /// Sum of squared gradient entries, accumulated in one fused pass over
    /// all parameter slices.
    fn grad_sq_sum(&self) -> f64 {
        self.grad_slices()
            .flat_map(|slice| slice.iter())
            .map(|g| g * g)
            .sum()
    }

    /// Global L2 norm of all accumulated gradients (for clipping / logging).
    pub fn grad_norm(&self) -> f64 {
        self.grad_sq_sum().sqrt()
    }

    /// Scale all accumulated gradients so their global norm is at most
    /// `max_norm`. The norm is computed in a single fused pass over every
    /// parameter slice (no per-layer re-walks), the square root is only
    /// taken when clipping actually triggers, and the scaling pass reuses
    /// the same slice order.
    pub fn clip_gradients(&mut self, max_norm: f64) {
        let sq = self.grad_sq_sum();
        if sq > max_norm * max_norm && sq > 0.0 {
            let scale = max_norm / sq.sqrt();
            for slice in self.layers.iter_mut().flat_map(|layer| {
                [
                    layer.grad_weights.data_mut(),
                    layer.grad_bias.as_mut_slice(),
                ]
            }) {
                for g in slice {
                    *g *= scale;
                }
            }
        }
    }
}

/// Forward-only `f32` mirror of a fitted [`Mlp`]: the weights were
/// down-converted once by [`Mlp::to_f32`], and every layer runs the fused
/// `f32` affine+activation kernels (double the SIMD lanes of the `f64`
/// path). Carries no training state.
#[derive(Debug, Clone)]
pub struct Mlp32 {
    layers: Vec<LinearLayer32>,
}

impl Mlp32 {
    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, LinearLayer32::in_dim)
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, LinearLayer32::out_dim)
    }

    /// Inference-only forward pass (no buffer reuse).
    pub fn infer(&self, input: &Matrix32) -> Matrix32 {
        let mut out = Matrix32::default();
        let mut scratch = Matrix32::default();
        self.infer_into(input, &mut out, &mut scratch);
        out
    }

    /// [`Mlp32::infer`] ping-ponging between two caller-owned buffers (the
    /// `f32` twin of [`Mlp::infer_into`]): a sampling loop that reuses them
    /// allocates nothing. The result always lands in `out`; `scratch` holds
    /// a stale intermediate afterwards.
    pub fn infer_into(&self, input: &Matrix32, out: &mut Matrix32, scratch: &mut Matrix32) {
        let n_layers = self.layers.len();
        if n_layers == 0 {
            out.resize_zeroed(input.rows(), input.cols());
            out.data_mut().copy_from_slice(input.data());
            return;
        }
        for (i, layer) in self.layers.iter().enumerate() {
            // Alternate buffers backwards from the last layer, which must
            // write `out`.
            let to_out = (n_layers - 1 - i).is_multiple_of(2);
            match (i == 0, to_out) {
                (true, true) => layer.infer_into(input, out),
                (true, false) => layer.infer_into(input, scratch),
                (false, true) => layer.infer_into(scratch, out),
                (false, false) => layer.infer_into(out, scratch),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use crate::optim::{Adam, AdamConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn architecture_matches_config() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MlpConfig::relu(6, vec![16, 8], 3);
        let mlp = Mlp::new(&cfg, &mut rng);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.input_dim(), 6);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.n_params(), 6 * 16 + 16 + 16 * 8 + 8 + 8 * 3 + 3);
        let x = Matrix::zeros(4, 6);
        assert_eq!(mlp.infer(&x).cols(), 3);
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MlpConfig::relu(4, vec![8], 2);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);
        assert_eq!(mlp.forward(&x), mlp.infer(&x));
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MlpConfig::relu(2, vec![16], 1);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig::default());

        // y = 3 x0 - 2 x1 + 1
        let x = Matrix::randn(256, 2, 1.0, &mut rng);
        let y = Matrix::from_vec(
            256,
            1,
            x.data()
                .chunks(2)
                .map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0)
                .collect(),
        );

        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..300 {
            let out = mlp.forward(&x);
            let (loss, grad) = mse_loss(&out, &y);
            if epoch == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            mlp.backward(&grad);
            mlp.apply_gradients(&mut adam, 0, 1e-2);
        }
        assert!(
            last_loss < first_loss * 0.05,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(11);
        for hidden in [vec![], vec![8], vec![8, 6], vec![8, 6, 5]] {
            let cfg = MlpConfig::relu(4, hidden, 3);
            let mut mlp = Mlp::new(&cfg, &mut rng);
            let x = Matrix::randn(7, 4, 1.0, &mut rng);
            let expect = mlp.infer(&x);
            // Dirty, wrong-shaped buffers must be fixed up by the _into calls.
            let mut out = Matrix::randn(2, 9, 1.0, &mut rng);
            let mut scratch = Matrix::randn(3, 1, 1.0, &mut rng);
            mlp.infer_into(&x, &mut out, &mut scratch);
            assert_eq!(out, expect);
            mlp.forward_into(&x, &mut out);
            assert_eq!(out, expect);
            // Reuse on a second batch must stay clean.
            let x2 = Matrix::randn(5, 4, 1.0, &mut rng);
            mlp.forward_into(&x2, &mut out);
            assert_eq!(out, mlp.infer(&x2));
        }
    }

    #[test]
    fn f32_mlp_tracks_f64_and_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(21);
        for hidden in [vec![], vec![16], vec![32, 24]] {
            let cfg = MlpConfig::relu(10, hidden, 6);
            let mlp = Mlp::new(&cfg, &mut rng);
            let mlp32 = mlp.to_f32();
            assert_eq!(mlp32.input_dim(), 10);
            assert_eq!(mlp32.output_dim(), 6);
            let x = Matrix::randn(9, 10, 1.0, &mut rng);
            let x32 = Matrix32::from_f64(&x);
            let want = mlp.infer(&x);
            let got = mlp32.infer(&x32);
            for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
                assert!(
                    (g as f64 - w).abs() <= 1e-3 * (1.0 + w.abs()),
                    "element {i}: f32 {g} vs f64 {w}"
                );
            }
            // Dirty, wrong-shaped buffers must be fixed up by infer_into,
            // and the f32 path must be byte-deterministic.
            let mut out = Matrix32::zeros(2, 3);
            let mut scratch = Matrix32::zeros(1, 1);
            mlp32.infer_into(&x32, &mut out, &mut scratch);
            assert_eq!(out, got);
        }
    }

    #[test]
    fn backward_params_only_matches_full_backward_gradients() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = MlpConfig::relu(5, vec![9, 7], 2);
        let mut full = Mlp::new(&cfg, &mut rng);
        let mut params_only = full.clone();
        let x = Matrix::randn(6, 5, 1.0, &mut rng);
        let grad_out = Matrix::randn(6, 2, 1.0, &mut rng);

        let a = full.forward(&x);
        let b = params_only.forward(&x);
        assert_eq!(a, b);
        full.backward(&grad_out);
        params_only.backward_params_only(&grad_out);
        for (lf, lp) in full.layers().iter().zip(params_only.layers()) {
            assert_eq!(lf.grad_weights, lp.grad_weights);
            assert_eq!(lf.grad_bias, lp.grad_bias);
        }
        assert_eq!(full.grad_norm(), params_only.grad_norm());
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MlpConfig::relu(3, vec![8], 2);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let x = Matrix::randn(16, 3, 10.0, &mut rng);
        let out = mlp.forward(&x);
        mlp.backward(&out.scale(100.0));
        assert!(mlp.grad_norm() > 1.0);
        mlp.clip_gradients(1.0);
        assert!(mlp.grad_norm() <= 1.0 + 1e-9);
    }
}
