//! Composable feed-forward networks (multi-layer perceptrons).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{Activation, Layer, LinearLayer};
use crate::matrix::Matrix;
use crate::optim::Optimizer;

/// Architecture description of an MLP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input width.
    pub input_dim: usize,
    /// Hidden layer widths (may be empty for a single linear map).
    pub hidden: Vec<usize>,
    /// Output width.
    pub output_dim: usize,
    /// Activation after every hidden layer.
    pub hidden_activation: Activation,
    /// Activation after the output layer (often [`Activation::Identity`]).
    pub output_activation: Activation,
}

impl MlpConfig {
    /// Convenience constructor with ReLU hidden layers and a linear output.
    pub fn relu(input_dim: usize, hidden: Vec<usize>, output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden,
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
        }
    }
}

/// A stack of [`LinearLayer`]s trained with manual backpropagation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<LinearLayer>,
}

impl Mlp {
    /// Build the network described by `config`.
    pub fn new<R: Rng>(config: &MlpConfig, rng: &mut R) -> Self {
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.output_dim);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let activation = if i + 2 == dims.len() {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(LinearLayer::new(dims[i], dims[i + 1], activation, rng));
        }
        Self { layers }
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[LinearLayer] {
        &self.layers
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, LinearLayer::in_dim)
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, LinearLayer::out_dim)
    }

    /// Total trainable parameter count.
    pub fn n_params(&self) -> usize {
        self.layers.iter().map(Layer::n_params).sum()
    }

    /// Forward pass storing caches for a subsequent [`Mlp::backward`].
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return input.clone();
        };
        let mut x = first.forward(input);
        for layer in layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference-only forward pass (no caches stored).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut layers = self.layers.iter();
        let Some(first) = layers.next() else {
            return input.clone();
        };
        let mut x = first.infer(input);
        for layer in layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Backward pass from dL/d(output); returns dL/d(input).
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return grad_output.clone();
        };
        let mut grad = last.backward(grad_output);
        for layer in layers {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Apply one optimisation step using the gradients accumulated by the
    /// last backward pass. `param_group` namespaces the optimizer state so
    /// several networks can share one optimizer without clobbering moments.
    pub fn apply_gradients<O: Optimizer>(
        &mut self,
        optimizer: &mut O,
        param_group: usize,
        lr: f64,
    ) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let wkey = param_group * 1000 + i * 2;
            let bkey = wkey + 1;
            // Parameters and gradients live in disjoint fields, so the
            // optimizer can read the gradient slices directly — no copies.
            optimizer.update(
                wkey,
                layer.weights.data_mut(),
                layer.grad_weights.data(),
                lr,
            );
            optimizer.update(bkey, &mut layer.bias, &layer.grad_bias, lr);
        }
    }

    /// Global L2 norm of all accumulated gradients (for clipping / logging).
    pub fn grad_norm(&self) -> f64 {
        let mut sq = 0.0;
        for layer in &self.layers {
            sq += layer.grad_weights.data().iter().map(|g| g * g).sum::<f64>();
            sq += layer.grad_bias.iter().map(|g| g * g).sum::<f64>();
        }
        sq.sqrt()
    }

    /// Scale all accumulated gradients so their global norm is at most
    /// `max_norm`.
    pub fn clip_gradients(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in &mut self.layers {
                layer.grad_weights.scale_assign(scale);
                for g in &mut layer.grad_bias {
                    *g *= scale;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse_loss;
    use crate::optim::{Adam, AdamConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn architecture_matches_config() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MlpConfig::relu(6, vec![16, 8], 3);
        let mlp = Mlp::new(&cfg, &mut rng);
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.input_dim(), 6);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.n_params(), 6 * 16 + 16 + 16 * 8 + 8 + 8 * 3 + 3);
        let x = Matrix::zeros(4, 6);
        assert_eq!(mlp.infer(&x).cols(), 3);
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MlpConfig::relu(4, vec![8], 2);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);
        assert_eq!(mlp.forward(&x), mlp.infer(&x));
    }

    #[test]
    fn learns_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MlpConfig::relu(2, vec![16], 1);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let mut adam = Adam::new(AdamConfig::default());

        // y = 3 x0 - 2 x1 + 1
        let x = Matrix::randn(256, 2, 1.0, &mut rng);
        let y = Matrix::from_vec(
            256,
            1,
            x.data()
                .chunks(2)
                .map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0)
                .collect(),
        );

        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..300 {
            let out = mlp.forward(&x);
            let (loss, grad) = mse_loss(&out, &y);
            if epoch == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            mlp.backward(&grad);
            mlp.apply_gradients(&mut adam, 0, 1e-2);
        }
        assert!(
            last_loss < first_loss * 0.05,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MlpConfig::relu(3, vec![8], 2);
        let mut mlp = Mlp::new(&cfg, &mut rng);
        let x = Matrix::randn(16, 3, 10.0, &mut rng);
        let out = mlp.forward(&x);
        mlp.backward(&out.scale(100.0));
        assert!(mlp.grad_norm() > 1.0);
        mlp.clip_gradients(1.0);
        assert!(mlp.grad_norm() <= 1.0 + 1e-9);
    }
}
