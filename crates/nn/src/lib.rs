//! Minimal from-scratch neural-network substrate.
//!
//! The surrogate models in the paper — TVAE (variational autoencoder),
//! CTABGAN+ (conditional GAN) and TabDDPM (diffusion model with MLP
//! denoiser) — are all built out of multi-layer perceptrons. This crate
//! provides exactly the pieces those models need, with no external ML
//! framework:
//!
//! * [`matrix`] — a dense row-major `f64` matrix whose matmuls run on
//!   SIMD-dispatched (scalar/SSE2/AVX2, plus opt-in FMA/AVX-512),
//!   cache-blocked packed kernels with rayon parallelism (see [`simd`] for
//!   the once-per-process tier choice),
//! * [`matrix32`] — the forward-only `f32` twin for the inference/sampling
//!   tier (same kernels, double the SIMD lanes; see [`mlp::Mlp::to_f32`]),
//! * [`layer`] — linear layers and activation functions with manual
//!   forward/backward passes,
//! * [`mlp`] — a composable feed-forward network,
//! * [`loss`] — MSE, binary/softmax cross-entropy and the Gaussian KL term
//!   used by the VAE,
//! * [`optim`] — SGD and Adam,
//! * [`schedule`] — cosine learning-rate decay (the schedule the paper
//!   trains with),
//! * [`sample`] — Gaussian / Gumbel-softmax sampling helpers.
//!
//! Everything is deterministic given an RNG seed, which the tests and the
//! experiment harness rely on.

mod kernels;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod matrix32;
pub mod mlp;
pub mod optim;
pub mod sample;
pub mod schedule;
pub mod simd;

pub use layer::{Activation, Layer, LinearLayer, LinearLayer32};
pub use loss::{
    bce_with_logits, gaussian_kl, mse_loss, softmax_cross_entropy, softmax_rows, softmax_slice,
};
pub use matrix::Matrix;
pub use matrix32::Matrix32;
pub use mlp::{Mlp, Mlp32, MlpConfig};
pub use optim::{Adam, AdamConfig, Optimizer, Sgd};
pub use sample::{
    gumbel_softmax, standard_normal_into, standard_normal_into_f32, standard_normal_matrix,
};
pub use schedule::{ConstantLr, CosineDecay, LrSchedule};
pub use simd::{active_tier, SimdTier};
