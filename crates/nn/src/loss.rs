//! Loss functions returning `(scalar_loss, dL/d(prediction))` pairs.

use crate::matrix::Matrix;

/// Mean squared error over all elements.
///
/// Single fused pass: the difference matrix doubles as the gradient buffer
/// (scaled in place), so one allocation and one traversal serve both the
/// loss reduction and the gradient.
pub fn mse_loss(prediction: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(prediction.rows(), target.rows(), "mse shape mismatch");
    assert_eq!(prediction.cols(), target.cols(), "mse shape mismatch");
    let n = prediction.len() as f64;
    let mut grad = prediction.sub(target);
    let scale = 2.0 / n;
    let mut loss = 0.0;
    for g in grad.data_mut() {
        loss += *g * *g;
        *g *= scale;
    }
    (loss / n, grad)
}

/// Numerically stable binary cross-entropy on raw logits, averaged over all
/// elements. `target` entries must lie in `[0, 1]`.
pub fn bce_with_logits(logits: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(logits.rows(), target.rows(), "bce shape mismatch");
    assert_eq!(logits.cols(), target.cols(), "bce shape mismatch");
    let n = logits.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for (i, (&z, &t)) in logits.data().iter().zip(target.data()).enumerate() {
        // log(1 + e^-|z|) + max(z, 0) - z t  (stable form)
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        let sigma = 1.0 / (1.0 + (-z).exp());
        grad.data_mut()[i] = (sigma - t) / n;
    }
    (loss / n, grad)
}

/// Numerically stable softmax of one logit slice, in place (max-shift,
/// exponentiate, normalise). The single implementation every softmax in the
/// workspace shares — [`softmax_rows`], the mixed-activation categorical
/// blocks — so their numerics can never drift apart.
pub fn softmax_slice(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise softmax.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        softmax_slice(out.row_mut(r));
    }
    out
}

/// Softmax cross-entropy where each *row block* of the target is a one-hot
/// (or soft) distribution. Returns the mean loss over rows and the gradient
/// with respect to the logits.
pub fn softmax_cross_entropy(logits: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(logits.rows(), target.rows(), "ce shape mismatch");
    assert_eq!(logits.cols(), target.cols(), "ce shape mismatch");
    let probs = softmax_rows(logits);
    let n = logits.rows() as f64;
    let mut loss = 0.0;
    for (p, t) in probs.data().iter().zip(target.data()) {
        if *t > 0.0 {
            loss -= t * p.max(1e-12).ln();
        }
    }
    let grad = probs.sub(target).scale(1.0 / n);
    (loss / n, grad)
}

/// KL divergence between `N(mu, exp(logvar))` and the standard normal,
/// summed over latent dimensions and averaged over rows — the regulariser in
/// the TVAE objective. Returns the loss and the gradients with respect to
/// `mu` and `logvar`.
pub fn gaussian_kl(mu: &Matrix, logvar: &Matrix) -> (f64, Matrix, Matrix) {
    assert_eq!(mu.rows(), logvar.rows(), "kl shape mismatch");
    assert_eq!(mu.cols(), logvar.cols(), "kl shape mismatch");
    let n = mu.rows() as f64;
    let mut loss = 0.0;
    for (&m, &lv) in mu.data().iter().zip(logvar.data()) {
        loss += -0.5 * (1.0 + lv - m * m - lv.exp());
    }
    let grad_mu = mu.scale(1.0 / n);
    let grad_logvar = logvar.map(|lv| 0.5 * (lv.exp() - 1.0) / n);
    (loss / n, grad_mu, grad_logvar)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let (loss, grad) = mse_loss(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_rows(&[vec![2.0, 0.0]]);
        let target = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let (loss, grad) = mse_loss(&pred, &target);
        assert!((loss - 2.0).abs() < 1e-12);
        assert!((grad.get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let logits = Matrix::from_rows(&[vec![0.0]]);
        let target = Matrix::from_rows(&[vec![1.0]]);
        let (loss, grad) = bce_with_logits(&logits, &target);
        assert!((loss - 2f64.ln()).abs() < 1e-12);
        assert!((grad.get(0, 0) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn bce_stable_for_large_logits() {
        let logits = Matrix::from_rows(&[vec![500.0, -500.0]]);
        let target = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let (loss, grad) = bce_with_logits(&logits, &target);
        assert!(loss.is_finite());
        assert!(loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-1000.0, 0.0, 1000.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Matrix::from_rows(&[vec![5.0, 0.0, 0.0]]);
        let bad = Matrix::from_rows(&[vec![0.0, 5.0, 0.0]]);
        let target = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let (lg, _) = softmax_cross_entropy(&good, &target);
        let (lb, _) = softmax_cross_entropy(&bad, &target);
        assert!(lg < lb);
    }

    #[test]
    fn cross_entropy_gradient_sign() {
        let logits = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let target = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &target);
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(0, 1) > 0.0);
    }

    #[test]
    fn gaussian_kl_zero_at_standard_normal() {
        let mu = Matrix::zeros(3, 4);
        let logvar = Matrix::zeros(3, 4);
        let (loss, gm, gl) = gaussian_kl(&mu, &logvar);
        assert!(loss.abs() < 1e-12);
        assert!(gm.data().iter().all(|&g| g == 0.0));
        assert!(gl.data().iter().all(|&g| g.abs() < 1e-12));
    }

    #[test]
    fn gaussian_kl_positive_otherwise() {
        let mu = Matrix::filled(2, 2, 1.5);
        let logvar = Matrix::filled(2, 2, -1.0);
        let (loss, gm, gl) = gaussian_kl(&mu, &logvar);
        assert!(loss > 0.0);
        assert!(gm.get(0, 0) > 0.0);
        assert!(gl.get(0, 0) < 0.0);
    }
}
