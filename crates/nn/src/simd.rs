//! Runtime SIMD tier selection for the matmul kernels.
//!
//! The kernel layer in [`crate::kernels`] has five implementations of every
//! inner microkernel — portable scalar, SSE2, AVX2, FMA and AVX-512, built
//! on `core::arch`, each instantiated for both `f64` and `f32` lanes — and
//! every matrix product dispatches through the tier chosen here. The tier is
//! decided **once per process** (first use) from CPUID feature detection, so
//! the hot training loop pays one cached atomic load per kernel call and the
//! selected path is fixed for the life of the process: repeated runs with
//! the same seed are deterministic because the same tier executes every
//! time.
//!
//! **Bit-exact vs tolerance tiers.** The scalar, SSE2 and AVX2 tiers
//! accumulate every output element along the inner dimension in ascending
//! index order with one product added at a time (multiply then add, never
//! FMA), so switching among them never changes results on finite data: the
//! property tests in `tests/simd_kernels.rs` pin those tiers to the scalar
//! reference byte-for-byte. The FMA and AVX-512 tiers fuse each
//! multiply-add into one rounding step — faster, but necessarily *not*
//! bit-equal to the scalar chain — so they are **opt-in only**: automatic
//! detection never selects past AVX2, and the property tests validate the
//! fused tiers against the reference within 1e-8 relative tolerance
//! instead of byte equality.
//!
//! The `SURROGATE_SIMD` environment variable forces a tier (`scalar`,
//! `sse2`, `avx2`, `fma` or `avx512`, case-insensitive; `auto` keeps the
//! detected tier). A recognised request the host cannot honour is clamped
//! down to the best supported tier rather than crashing on an illegal
//! instruction, so `SURROGATE_SIMD=avx512` on an AVX2+FMA host runs the FMA
//! tier. An **unrecognised** value is a hard error (panic with the accepted
//! set): silently clamping a typo like `avx521` would run a different
//! numerical contract than the one asked for.

use std::sync::OnceLock;

/// Instruction-set tier the matmul microkernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar fallback (any architecture). Bit-exact.
    Scalar,
    /// 128-bit `core::arch` kernels (x86-64 baseline). Bit-exact.
    Sse2,
    /// 256-bit `core::arch` kernels, runtime-detected. Bit-exact.
    Avx2,
    /// 256-bit kernels with fused multiply-add. Opt-in, tolerance-validated.
    Fma,
    /// 512-bit kernels with fused multiply-add. Opt-in, tolerance-validated.
    Avx512,
}

impl SimdTier {
    /// Number of `f64` lanes per vector register on this tier.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse2 => 2,
            SimdTier::Avx2 | SimdTier::Fma => 4,
            SimdTier::Avx512 => 8,
        }
    }

    /// Number of `f32` lanes per vector register on this tier (double the
    /// `f64` width everywhere except the scalar fallback).
    pub fn lanes_f32(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse2 => 4,
            SimdTier::Avx2 | SimdTier::Fma => 8,
            SimdTier::Avx512 => 16,
        }
    }

    /// Whether this tier keeps the bit-exact scalar accumulation contract
    /// (multiply then add, one rounding per term). The FMA and AVX-512
    /// tiers fuse the multiply-add and are validated by tolerance instead.
    pub fn bit_exact(self) -> bool {
        matches!(self, SimdTier::Scalar | SimdTier::Sse2 | SimdTier::Avx2)
    }

    /// Lower-case tier name, matching what `SURROGATE_SIMD` accepts.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
            SimdTier::Fma => "fma",
            SimdTier::Avx512 => "avx512",
        }
    }
}

static TIER: OnceLock<SimdTier> = OnceLock::new();

/// The tier every kernel dispatches through, selected once per process.
///
/// # Panics
///
/// Panics (with the accepted value set) when `SURROGATE_SIMD` holds an
/// unrecognised value — a typo must not silently run a different numerical
/// contract than the one requested.
pub fn active_tier() -> SimdTier {
    *TIER.get_or_init(|| {
        match select_tier(
            std::env::var("SURROGATE_SIMD").ok().as_deref(),
            detected_auto_tier(),
            detected_max_tier(),
        ) {
            Ok(tier) => tier,
            Err(msg) => panic!("{msg}"),
        }
    })
}

/// Best **bit-exact** tier the host CPU supports — what runs when nothing
/// is forced. Automatic selection stops at AVX2: the FMA/AVX-512 tiers
/// change rounding and must be asked for explicitly.
fn detected_auto_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline; no detection needed.
            SimdTier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Best tier the host CPU supports at all, including the opt-in fused
/// tiers — the ceiling explicit `SURROGATE_SIMD` requests are clamped to.
fn detected_max_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            SimdTier::Avx512
        } else if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            SimdTier::Fma
        } else if std::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            SimdTier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Resolve an optional `SURROGATE_SIMD` request: recognised names select
/// that tier (clamped down to what the host supports), `auto`/unset keeps
/// the detected bit-exact tier, and anything else is rejected with the
/// accepted set named in the message.
fn select_tier(request: Option<&str>, auto: SimdTier, max: SimdTier) -> Result<SimdTier, String> {
    let requested = match request.map(|r| r.trim().to_ascii_lowercase()) {
        Some(name) => match name.as_str() {
            "scalar" => SimdTier::Scalar,
            "sse2" => SimdTier::Sse2,
            "avx2" => SimdTier::Avx2,
            "fma" => SimdTier::Fma,
            "avx512" => SimdTier::Avx512,
            "" | "auto" => auto,
            other => {
                return Err(format!(
                    "unrecognized SURROGATE_SIMD value '{other}' \
                     (accepted: scalar, sse2, avx2, fma, avx512, auto)"
                ))
            }
        },
        None => auto,
    };
    Ok(requested.min(max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_and_lanes() {
        assert!(SimdTier::Scalar < SimdTier::Sse2);
        assert!(SimdTier::Sse2 < SimdTier::Avx2);
        assert!(SimdTier::Avx2 < SimdTier::Fma);
        assert!(SimdTier::Fma < SimdTier::Avx512);
        assert_eq!(SimdTier::Scalar.lanes(), 1);
        assert_eq!(SimdTier::Sse2.lanes(), 2);
        assert_eq!(SimdTier::Avx2.lanes(), 4);
        assert_eq!(SimdTier::Fma.lanes(), 4);
        assert_eq!(SimdTier::Avx512.lanes(), 8);
        // The f32 instantiation doubles every vector width.
        for tier in [
            SimdTier::Sse2,
            SimdTier::Avx2,
            SimdTier::Fma,
            SimdTier::Avx512,
        ] {
            assert_eq!(tier.lanes_f32(), 2 * tier.lanes(), "{tier:?}");
        }
        assert_eq!(SimdTier::Scalar.lanes_f32(), 1);
    }

    #[test]
    fn fused_tiers_are_not_bit_exact() {
        assert!(SimdTier::Scalar.bit_exact());
        assert!(SimdTier::Sse2.bit_exact());
        assert!(SimdTier::Avx2.bit_exact());
        assert!(!SimdTier::Fma.bit_exact());
        assert!(!SimdTier::Avx512.bit_exact());
    }

    #[test]
    fn select_honours_requests_up_to_max() {
        let auto = SimdTier::Avx2;
        let max = SimdTier::Avx512;
        assert_eq!(select_tier(Some("scalar"), auto, max), Ok(SimdTier::Scalar));
        assert_eq!(select_tier(Some("SSE2"), auto, max), Ok(SimdTier::Sse2));
        assert_eq!(select_tier(Some(" avx2 "), auto, max), Ok(SimdTier::Avx2));
        assert_eq!(select_tier(Some("fma"), auto, max), Ok(SimdTier::Fma));
        assert_eq!(select_tier(Some("AVX512"), auto, max), Ok(SimdTier::Avx512));
        assert_eq!(select_tier(None, auto, max), Ok(SimdTier::Avx2));
        // `auto` and the fused tiers: auto never selects past the bit-exact
        // ceiling, even on a host that supports AVX-512.
        assert_eq!(select_tier(Some("auto"), auto, max), Ok(SimdTier::Avx2));
    }

    #[test]
    fn select_clamps_recognised_requests_to_host_support() {
        // AVX-512 request on an AVX2+FMA host runs the FMA tier.
        assert_eq!(
            select_tier(Some("avx512"), SimdTier::Avx2, SimdTier::Fma),
            Ok(SimdTier::Fma)
        );
        // FMA request on a plain-AVX2 host clamps to AVX2.
        assert_eq!(
            select_tier(Some("fma"), SimdTier::Avx2, SimdTier::Avx2),
            Ok(SimdTier::Avx2)
        );
        assert_eq!(
            select_tier(Some("avx2"), SimdTier::Sse2, SimdTier::Sse2),
            Ok(SimdTier::Sse2)
        );
        assert_eq!(
            select_tier(Some("sse2"), SimdTier::Scalar, SimdTier::Scalar),
            Ok(SimdTier::Scalar)
        );
        assert_eq!(
            select_tier(None, SimdTier::Scalar, SimdTier::Scalar),
            Ok(SimdTier::Scalar)
        );
    }

    #[test]
    fn select_rejects_unknown_values_with_the_accepted_set() {
        for bad in ["avx512-nope", "avx521", "fast", "f32", "0"] {
            let err = select_tier(Some(bad), SimdTier::Avx2, SimdTier::Avx512)
                .expect_err("unknown value must be rejected");
            assert!(err.contains(bad), "{err}");
            assert!(err.contains("accepted: scalar, sse2, avx2, fma, avx512, auto"));
        }
    }

    #[test]
    fn active_tier_is_stable_across_calls() {
        // Dispatch determinism: the process-wide tier never changes once
        // selected.
        let first = active_tier();
        for _ in 0..8 {
            assert_eq!(active_tier(), first);
        }
        assert!(first <= detected_max_tier());
    }
}
