//! Runtime SIMD tier selection for the matmul kernels.
//!
//! The kernel layer in [`crate::kernels`] has three implementations of every
//! inner microkernel — portable scalar, SSE2 (two `f64` lanes) and AVX2
//! (four `f64` lanes), built on `core::arch` — and every matrix product
//! dispatches through the tier chosen here. The tier is decided **once per
//! process** (first use) from CPUID feature detection, so the hot training
//! loop pays one cached atomic load per kernel call and the selected path is
//! fixed for the life of the process: repeated runs with the same seed are
//! deterministic because the same tier executes every time.
//!
//! For debugging and baseline measurements the `SURROGATE_SIMD` environment
//! variable forces a tier (`scalar`, `sse2` or `avx2`, case-insensitive;
//! anything else — including `auto` — keeps the detected tier). A request
//! the host cannot honour is clamped down to the detected tier rather than
//! crashing on an illegal instruction, so `SURROGATE_SIMD=avx2` on an
//! SSE2-only host silently runs SSE2.
//!
//! All three tiers accumulate every output element along the inner dimension
//! in ascending index order with one product added at a time (multiply then
//! add, never FMA), so switching tiers never changes results on finite data:
//! the property tests in `tests/simd_kernels.rs` pin the dispatched kernels
//! to the scalar reference.

use std::sync::OnceLock;

/// Instruction-set tier the matmul microkernels run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar fallback (any architecture).
    Scalar,
    /// 128-bit `core::arch` kernels, two `f64` lanes (x86-64 baseline).
    Sse2,
    /// 256-bit `core::arch` kernels, four `f64` lanes (runtime-detected).
    Avx2,
}

impl SimdTier {
    /// Number of `f64` lanes per vector register on this tier.
    pub fn lanes(self) -> usize {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Sse2 => 2,
            SimdTier::Avx2 => 4,
        }
    }

    /// Lower-case tier name, matching what `SURROGATE_SIMD` accepts.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

static TIER: OnceLock<SimdTier> = OnceLock::new();

/// The tier every kernel dispatches through, selected once per process.
pub fn active_tier() -> SimdTier {
    *TIER.get_or_init(|| {
        select_tier(
            std::env::var("SURROGATE_SIMD").ok().as_deref(),
            detected_tier(),
        )
    })
}

/// Best tier the host CPU supports.
fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline; no detection needed.
            SimdTier::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdTier::Scalar
    }
}

/// Resolve an optional `SURROGATE_SIMD` request against the detected tier:
/// recognised names select that tier (clamped to what the host supports),
/// anything else keeps the detected tier.
fn select_tier(request: Option<&str>, detected: SimdTier) -> SimdTier {
    let requested = match request.map(|r| r.trim().to_ascii_lowercase()) {
        Some(name) => match name.as_str() {
            "scalar" => SimdTier::Scalar,
            "sse2" => SimdTier::Sse2,
            "avx2" => SimdTier::Avx2,
            _ => detected,
        },
        None => detected,
    };
    requested.min(detected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_and_lanes() {
        assert!(SimdTier::Scalar < SimdTier::Sse2);
        assert!(SimdTier::Sse2 < SimdTier::Avx2);
        assert_eq!(SimdTier::Scalar.lanes(), 1);
        assert_eq!(SimdTier::Sse2.lanes(), 2);
        assert_eq!(SimdTier::Avx2.lanes(), 4);
    }

    #[test]
    fn select_honours_requests_up_to_detected() {
        let d = SimdTier::Avx2;
        assert_eq!(select_tier(Some("scalar"), d), SimdTier::Scalar);
        assert_eq!(select_tier(Some("SSE2"), d), SimdTier::Sse2);
        assert_eq!(select_tier(Some(" avx2 "), d), SimdTier::Avx2);
        assert_eq!(select_tier(None, d), SimdTier::Avx2);
        assert_eq!(select_tier(Some("auto"), d), SimdTier::Avx2);
        assert_eq!(select_tier(Some("avx512-nope"), d), SimdTier::Avx2);
    }

    #[test]
    fn select_clamps_to_host_support() {
        assert_eq!(select_tier(Some("avx2"), SimdTier::Sse2), SimdTier::Sse2);
        assert_eq!(
            select_tier(Some("sse2"), SimdTier::Scalar),
            SimdTier::Scalar
        );
        assert_eq!(select_tier(None, SimdTier::Scalar), SimdTier::Scalar);
    }

    #[test]
    fn active_tier_is_stable_across_calls() {
        // Dispatch determinism: the process-wide tier never changes once
        // selected.
        let first = active_tier();
        for _ in 0..8 {
            assert_eq!(active_tier(), first);
        }
        assert!(first <= detected_tier());
    }
}
